"""The persistent concurrent advising daemon.

:class:`AdvisingDaemon` is the long-lived heart of ``repro.service``: it
owns one advising configuration (:class:`ServiceConfig`), a bounded
:class:`~repro.service.queue.JobQueue`, a TTL-evicting
:class:`~repro.service.jobs.JobStore` and a worker pool, and multiplexes
any number of clients over them.  Where every one-shot ``gpa-advise``
invocation pays full process startup and tears its pool down again, the
daemon pays once and keeps the worker processes, the warm profile cache and
the benchmark registry alive across requests.

Execution mirrors :meth:`AdvisingSession.stream
<repro.api.session.AdvisingSession.stream>` exactly: requests cross into
worker processes as their ``to_dict`` wire form, results cross back the
same way, and a worker-side :class:`~repro.api.session.AdvisingSession`
(rebuilt from primitives, cached per process) runs each one inline.
Because that is the same engine, the same serialization and the same
deterministic simulator, a daemon result's report is **bit-identical** to
an inline ``AdvisingSession.advise`` report for the same request.

Failure handling mirrors the batch advisor: advising failures are captured
into the result (the job ends ``failed`` with the traceback), and a worker
*process* crash synthesizes a failed result instead of poisoning the
daemon — the broken pool is replaced and later jobs keep running.

Shutdown is graceful and idempotent: :meth:`AdvisingDaemon.shutdown` stops
admissions (503), drains every already-admitted job through the workers,
waits for the pool to finish its writes (which is what persists the
on-disk profile cache), and reports a summary.  A second shutdown — a
SIGTERM racing a SIGINT, say — returns the same summary without touching
anything.
"""

from __future__ import annotations

import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.request import AdvisingRequest
from repro.api.result import AdvisingResult
from repro.api.schema import API_SCHEMA_VERSION, ApiError
from repro.api.session import AdvisingSession
from repro.arch.machine import ArchitectureError, get_architecture
from repro.sampling.memory import check_memory_model
from repro.sampling.profiler import check_simulation_scope
from repro.sampling.vector import resolve_simulator_backend
from repro.service.errors import (
    ServiceError,
    ServiceUnavailableError,
    ServiceValidationError,
)
from repro.service.jobs import Job, JobRegistry, JobStore
from repro.service.queue import JobQueue
from repro.service.repository import JobRepository

#: Daemon lifecycle states (reported by ``/v1/healthz`` and ``/v1/stats``).
DAEMON_STATES = ("new", "serving", "draining", "stopped")


@dataclass(frozen=True)
class ServiceConfig:
    """The advising configuration a daemon serves — primitives only.

    Primitives are the whole point: the same dict crosses into every worker
    process (exactly like :meth:`AdvisingSession._pool_config
    <repro.api.session.AdvisingSession._pool_config>` payloads do), so the
    daemon can never be configured with something its workers cannot
    rebuild.
    """

    arch_flag: str = "sm_70"
    sample_period: int = 8
    simulation_scope: str = "single_wave"
    memory_model: str = "flat"
    simulator_backend: Optional[str] = None
    cache_dir: Optional[str] = None
    optimizer_names: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        try:
            get_architecture(self.arch_flag)
        except ArchitectureError as exc:
            raise ServiceValidationError(str(exc)) from exc
        if self.sample_period <= 0:
            raise ServiceValidationError(
                f"sample_period must be positive, got {self.sample_period}"
            )
        try:
            check_simulation_scope(self.simulation_scope)
            check_memory_model(self.memory_model)
            # Resolve once at construction so the healthz echo, the worker
            # payload and every session agree on the core that runs.
            object.__setattr__(
                self, "simulator_backend",
                resolve_simulator_backend(self.simulator_backend),
            )
        except ValueError as exc:
            raise ServiceValidationError(str(exc)) from exc

    def primitives(self) -> dict:
        """The worker-process payload (also ``/v1/healthz``'s config echo)."""
        return {
            "arch_flag": self.arch_flag,
            "sample_period": self.sample_period,
            "simulation_scope": self.simulation_scope,
            "memory_model": self.memory_model,
            "simulator_backend": self.simulator_backend,
            "cache_dir": self.cache_dir,
            "optimizer_names": (
                list(self.optimizer_names)
                if self.optimizer_names is not None else None
            ),
        }

    def build_session(self) -> AdvisingSession:
        """An inline session speaking exactly this configuration."""
        return AdvisingSession(
            architecture=self.arch_flag,
            optimizers=self.optimizer_names,
            sample_period=self.sample_period,
            cache=self.cache_dir,
            jobs=1,
            simulation_scope=self.simulation_scope,
            memory_model=self.memory_model,
            simulator_backend=self.simulator_backend,
        )


# ----------------------------------------------------------------------
# Worker-process side
# ----------------------------------------------------------------------
#: Per-process session cache: a daemon worker serves thousands of jobs, and
#: rebuilding the session (architecture model, optimizer set, cache handle)
#: per job would throw the daemon's whole warm-state advantage away.
_WORKER_SESSIONS: Dict[str, AdvisingSession] = {}


def _worker_session(config: dict) -> AdvisingSession:
    key = repr(sorted(config.items(), key=lambda item: item[0]))
    session = _WORKER_SESSIONS.get(key)
    if session is None:
        session = AdvisingSession(
            architecture=config["arch_flag"],
            optimizers=(
                tuple(config["optimizer_names"])
                if config["optimizer_names"] else None
            ),
            sample_period=config["sample_period"],
            cache=config["cache_dir"],
            jobs=1,
            simulation_scope=config["simulation_scope"],
            memory_model=config["memory_model"],
            simulator_backend=config.get("simulator_backend"),
        )
        _WORKER_SESSIONS[key] = session
    return session


def _advise_with_session(session: AdvisingSession, payload: dict, index: int) -> dict:
    """Run one wire-form request on a session; report cache traffic deltas."""
    cache = session.cache
    hits_before, misses_before = (
        (cache.hits, cache.misses) if cache is not None else (0, 0)
    )
    result = session.advise(AdvisingRequest.from_dict(payload), index=index)
    hits, misses = (
        (cache.hits - hits_before, cache.misses - misses_before)
        if cache is not None else (0, 0)
    )
    return {
        "result": result.to_dict(),
        "cache_hits": hits,
        "cache_misses": misses,
    }


def _service_advise(config: dict, payload: dict, index: int) -> dict:
    """Pool entry point: cached worker session + one advising job."""
    return _advise_with_session(_worker_session(config), payload, index)


def _warm_worker(config: dict) -> bool:
    """Pre-fork pool processes and pre-build their sessions at startup."""
    _worker_session(config)
    return True


# ----------------------------------------------------------------------
# The daemon proper
# ----------------------------------------------------------------------
class AdvisingDaemon:
    """A persistent, concurrent, queue-fed advising engine."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        workers: int = 2,
        queue_capacity: int = 64,
        job_ttl: Optional[float] = 900.0,
        use_pool: bool = True,
        clock=time.monotonic,
        store_path: Optional[str] = None,
        store: Optional[JobRegistry] = None,
        eviction_interval: Optional[float] = None,
        coalesce: bool = True,
    ):
        if workers < 1:
            raise ServiceValidationError(f"workers must be >= 1, got {workers}")
        if eviction_interval is not None and eviction_interval <= 0:
            raise ServiceValidationError(
                f"eviction_interval must be positive (or None), "
                f"got {eviction_interval}"
            )
        self.config = config if config is not None else ServiceConfig()
        self.workers = workers
        self.use_pool = use_pool
        self.queue = JobQueue(queue_capacity)
        # The registry backend: an injected store wins (tests), then a
        # --store path (durable SQLite, wall-clock TTL so eviction survives
        # restarts), then the in-memory default.
        if store is not None:
            self.store = store
        elif store_path is not None:
            self.store = JobRepository(store_path, ttl=job_ttl)
        else:
            self.store = JobStore(ttl=job_ttl, clock=clock)
        self.store_path = store_path
        self.eviction_interval = eviction_interval
        self.coalesce = coalesce
        self._clock = clock
        self._state = "new"
        self._state_lock = threading.RLock()
        self._threads: List[threading.Thread] = []
        self._executor: Optional[ProcessPoolExecutor] = None
        self._session: Optional[AdvisingSession] = None
        self._session_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._in_flight = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._executions = 0
        self._started_at: Optional[float] = None
        self._shutdown_summary: Optional[dict] = None
        # Request coalescing: fingerprint -> in-flight primary job id,
        # primary job id -> follower job ids, primary job id -> fingerprint
        # (for teardown).  One lock guards all three maps.
        self._coalesce_lock = threading.Lock()
        self._inflight_by_fp: Dict[str, str] = {}
        self._followers: Dict[str, List[str]] = {}
        self._fp_of: Dict[str, str] = {}
        self._coalesce_groups = 0
        self._recovered = 0
        self._eviction_stop = threading.Event()
        self._eviction_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._state_lock:
            return self._state

    def start(self) -> "AdvisingDaemon":
        """Spin up the worker pool and the worker threads (once)."""
        with self._state_lock:
            if self._state != "new":
                raise ServiceError(f"daemon already started (state {self._state!r})")
            self._state = "serving"
        self._started_at = self._clock()
        # Crash recovery: whatever a previous daemon admitted but never
        # finished goes back on the queue before any worker starts, so
        # restarts resume the backlog instead of forgetting it.  The
        # in-memory store recovers nothing by construction.
        recovered = self.store.recover()
        if recovered:
            self.queue.restore(recovered)
            self._recovered = len(recovered)
        if self.use_pool:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            # Fork every worker process *now*, from a quiet main thread —
            # before HTTP handler threads exist — and pre-build their
            # sessions so the first real job pays no cold start.
            warmups = [
                self._executor.submit(_warm_worker, self.config.primitives())
                for _ in range(self.workers)
            ]
            for future in warmups:
                future.result()
        else:
            self._session = self.config.build_session()
        for number in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"gpa-service-worker-{number}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        if self.eviction_interval is not None and self.store.ttl is not None:
            # Explicit, scheduled eviction (the shared registry contract):
            # an idle daemon still sheds expired results instead of only
            # cleaning when someone happens to talk to it.
            self._eviction_thread = threading.Thread(
                target=self._eviction_loop, name="gpa-service-evictor",
                daemon=True,
            )
            self._eviction_thread.start()
        return self

    def _eviction_loop(self) -> None:
        while not self._eviction_stop.wait(self.eviction_interval):
            try:
                self.store.evict()
            except Exception:  # pragma: no cover - store is closing/broken
                return

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> dict:
        """Stop admissions, settle every admitted job, stop the workers.

        ``drain=True`` (the default, and what SIGTERM triggers) lets the
        workers finish everything already queued; ``drain=False`` aborts
        queued jobs (they end ``failed``) and only waits for the in-flight
        ones.  Waiting for the pool also flushes its profile-cache writes,
        so the on-disk cache is fully persisted when this returns.
        Idempotent: repeated calls return the first call's summary.
        """
        with self._state_lock:
            if self._state == "stopped":
                return dict(self._shutdown_summary or self._summary())
            if self._state == "new":
                self._state = "stopped"
                self._shutdown_summary = self._summary()
                self.store.close()
                return dict(self._shutdown_summary)
            if self._state == "draining":
                concurrent = True
            else:
                concurrent = False
                self._state = "draining"
            threads = list(self._threads)
        if concurrent:
            # A concurrent shutdown is already in progress; wait for it
            # (outside the state lock: workers may need it to settle).
            for thread in threads:
                thread.join(timeout)
            with self._state_lock:
                return dict(self._shutdown_summary or self._summary())

        if not drain:
            for job_id in self.queue.clear():
                # Aborting a queued primary aborts every submission that
                # coalesced onto it — none of them will ever run.
                self._abort_group(job_id, "daemon shut down before the job ran")
        # Sentinels queue *behind* the remaining work: FIFO order is the
        # drain guarantee.
        self.queue.close(len(threads))
        for thread in threads:
            thread.join(timeout)
        self._eviction_stop.set()
        if self._eviction_thread is not None:
            self._eviction_thread.join(timeout)
            self._eviction_thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        with self._state_lock:
            self._state = "stopped"
            self._shutdown_summary = self._summary()
        self.store.close()
        return dict(self._shutdown_summary)

    def _summary(self) -> dict:
        counts = self.store.counts
        return {
            "state": "stopped",
            "jobs_submitted": counts.submitted,
            "jobs_served": counts.served,
            "jobs_failed": counts.failed,
            "jobs_aborted": counts.aborted,
            "jobs_coalesced": counts.coalesced,
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> str:
        """Validate and enqueue one ``advising_request`` envelope."""
        return self.submit_batch([payload])[0]

    def submit_batch(self, payloads: List[dict]) -> List[str]:
        """Validate and enqueue a batch atomically (all admitted or none)."""
        if not isinstance(payloads, list) or not payloads:
            raise ServiceValidationError(
                "a batch must be a non-empty list of advising_request payloads"
            )
        requests = []
        for position, payload in enumerate(payloads):
            try:
                requests.append(AdvisingRequest.from_dict(payload))
            except (ApiError, TypeError, ValueError) as exc:
                raise ServiceValidationError(
                    f"request {position}: {exc}"
                ) from exc
        with self._state_lock:
            if self._state != "serving":
                raise ServiceUnavailableError(
                    f"daemon is {self._state}; not accepting new jobs"
                )
            # Admission happens under the state lock so a draining daemon
            # can never pick up a job admitted after its sentinels.
            jobs = [
                self.store.create(request.to_dict(), request.describe(), index)
                for index, request in enumerate(requests)
            ]
            primaries, attachments = self._plan_coalescing(jobs, requests)
            try:
                self.queue.put_many([job.job_id for job in primaries])
            except ServiceError:
                self._unplan_coalescing(jobs, attachments)
                for job in jobs:
                    self.store.discard(job.job_id)
                raise
            for job_id, primary_id in attachments:
                self.store.attach(job_id, primary_id)
        return [job.job_id for job in jobs]

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    def _plan_coalescing(
        self, jobs: List[Job], requests: List[AdvisingRequest],
    ) -> Tuple[List[Job], List[Tuple[str, str]]]:
        """Split a validated batch into queue-bound primaries and followers.

        A submission coalesces when an identical request (same
        :meth:`~repro.api.request.AdvisingRequest.fingerprint`, which
        ignores ``label``) is already in flight *and* both sides use the
        ``default`` cache policy — ``bypass``/``refresh`` submissions
        explicitly demand their own run, so they never join or anchor a
        group.  Followers are never enqueued: the primary's single
        simulation fans its result out to them on completion.
        """
        if not self.coalesce:
            return list(jobs), []
        primaries: List[Job] = []
        attachments: List[Tuple[str, str]] = []
        with self._coalesce_lock:
            for job, request in zip(jobs, requests):
                if request.cache_policy != "default":
                    primaries.append(job)
                    continue
                fingerprint = request.fingerprint()
                primary_id = self._inflight_by_fp.get(fingerprint)
                if primary_id is not None:
                    if not self._followers[primary_id]:
                        self._coalesce_groups += 1
                    self._followers[primary_id].append(job.job_id)
                    attachments.append((job.job_id, primary_id))
                else:
                    self._inflight_by_fp[fingerprint] = job.job_id
                    self._followers[job.job_id] = []
                    self._fp_of[job.job_id] = fingerprint
                    primaries.append(job)
        return primaries, attachments

    def _unplan_coalescing(
        self, jobs: List[Job], attachments: List[Tuple[str, str]],
    ) -> None:
        """Undo :meth:`_plan_coalescing` for a batch the queue rejected."""
        attached = {job_id for job_id, _ in attachments}
        with self._coalesce_lock:
            for job_id, primary_id in attachments:
                followers = self._followers.get(primary_id)
                if followers and job_id in followers:
                    followers.remove(job_id)
                    if not followers:
                        self._coalesce_groups -= 1
            for job in jobs:
                if job.job_id in attached:
                    continue
                fingerprint = self._fp_of.pop(job.job_id, None)
                if fingerprint is not None:
                    self._inflight_by_fp.pop(fingerprint, None)
                    self._followers.pop(job.job_id, None)

    def _pop_followers(self, job_id: str) -> List[str]:
        """Close a primary's coalescing group and return its followers."""
        with self._coalesce_lock:
            fingerprint = self._fp_of.pop(job_id, None)
            if fingerprint is not None:
                self._inflight_by_fp.pop(fingerprint, None)
            return self._followers.pop(job_id, [])

    def _abort_group(self, job_id: str, error: str) -> None:
        """Abort a never-run primary and every follower attached to it."""
        for settle_id in [job_id, *self._pop_followers(job_id)]:
            try:
                self.store.abort(settle_id, error)
            except ServiceError:  # pragma: no cover - evicted under us
                continue

    def _adapted_result(self, result: Optional[dict], follower: Job) -> Optional[dict]:
        """The primary's result re-addressed to a coalesced follower.

        Identical simulation, different envelope address: the follower keeps
        its own ``index``/``label`` and its own request wire form (which can
        differ from the primary's only in ``label`` — everything else is
        pinned by the shared fingerprint).
        """
        if result is None:
            return None
        adapted = dict(result)
        adapted["index"] = follower.index
        adapted["label"] = follower.label
        adapted["request"] = follower.payload
        return adapted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def job_view(self, job_id: str) -> dict:
        return self.store.view(job_id)

    def lint(self, payload: dict) -> dict:
        """Run the static lint for one ``advising_request`` envelope.

        Synchronous (no queue, no job): the static checker never simulates,
        so a lint answers in milliseconds and a job handle would be pure
        overhead.  Runs on a daemon-side inline session, lazily built and
        serialized — lint never touches the profile cache, so it cannot
        perturb dynamic results.
        """
        try:
            request = AdvisingRequest.from_dict(payload)
        except (ApiError, TypeError, ValueError) as exc:
            raise ServiceValidationError(f"lint request: {exc}") from exc
        with self._state_lock:
            if self._state != "serving":
                raise ServiceUnavailableError(
                    f"daemon is {self._state}; not accepting new jobs"
                )
        with self._session_lock:
            if self._session is None:
                self._session = self.config.build_session()
            try:
                return self._session.lint(request).to_dict()
            except ApiError:
                raise
            except Exception as exc:
                raise ServiceValidationError(f"lint failed: {exc}") from exc

    def healthz(self) -> dict:
        return {
            "kind": "healthz",
            "schema_version": API_SCHEMA_VERSION,
            "status": "ok" if self.state == "serving" else self.state,
            "state": self.state,
            "config": self.config.primitives(),
        }

    def stats(self) -> dict:
        counts = self.store.counts
        with self._stats_lock:
            hits, misses = self._cache_hits, self._cache_misses
            in_flight = self._in_flight
            executions = self._executions
        with self._coalesce_lock:
            groups = self._coalesce_groups
            inflight_keys = len(self._inflight_by_fp)
        lookups = hits + misses
        return {
            "kind": "service_stats",
            "schema_version": API_SCHEMA_VERSION,
            "state": self.state,
            "workers": self.workers,
            "queue_depth": self.queue.depth,
            "queue_capacity": self.queue.capacity,
            "in_flight": in_flight,
            "jobs_submitted": counts.submitted,
            "jobs_served": counts.served,
            "jobs_done": counts.done,
            "jobs_failed": counts.failed,
            "jobs_aborted": counts.aborted,
            "jobs_evicted": counts.evicted,
            "jobs_coalesced": counts.coalesced,
            "jobs_executed": executions,
            "jobs_recovered": self._recovered,
            "jobs_stored": len(self.store),
            "coalescing": {
                "enabled": self.coalesce,
                "groups": groups,
                "attached": counts.coalesced,
                "in_flight_keys": inflight_keys,
            },
            "persistence": {
                "backend": (
                    "sqlite" if isinstance(self.store, JobRepository)
                    else "memory"
                ),
                "path": self.store_path,
            },
            "cache": None if self.config.cache_dir is None else {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
            },
            "uptime_seconds": (
                round(self._clock() - self._started_at, 3)
                if self._started_at is not None else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job_id = self.queue.get()
            if job_id is None:  # shutdown sentinel
                return
            try:
                job = self.store.mark_running(job_id)
            except ServiceError:  # evicted/raced away; nothing to run
                self._pop_followers(job_id)
                continue
            with self._stats_lock:
                self._in_flight += 1
            try:
                self._settle(job)
            finally:
                with self._stats_lock:
                    self._in_flight -= 1

    def _settle(self, job: Job) -> None:
        """Execute one job and move it to a terminal state, never raising."""
        executor = self._executor
        with self._stats_lock:
            self._executions += 1
        try:
            outcome = self._execute(job.payload, job.index)
        except BaseException as exc:
            error = traceback.format_exc()
            self._finish_group(job, self._failed_result(job, error), error)
            if isinstance(exc, BrokenProcessPool):
                self._replace_pool(executor)
            return
        result = outcome["result"]
        with self._stats_lock:
            self._cache_hits += outcome["cache_hits"]
            self._cache_misses += outcome["cache_misses"]
        self._finish_group(job, result, result.get("error"))

    def _finish_group(self, job: Job, result: Optional[dict],
                      error: Optional[str]) -> None:
        """Settle a finished primary, then fan its result out to every
        submission that coalesced onto it (each under its own address)."""
        followers = self._pop_followers(job.job_id)
        self.store.finish(job.job_id, result, error)
        for follower_id in followers:
            try:
                follower = self.store.get(follower_id)
                self.store.finish(
                    follower_id, self._adapted_result(result, follower), error
                )
            except ServiceError:  # pragma: no cover - evicted under us
                continue

    def _execute(self, payload: dict, index: int) -> dict:
        """One job through the pool (or inline when ``use_pool=False``)."""
        executor = self._executor
        if executor is not None:
            future = executor.submit(
                _service_advise, self.config.primitives(), payload, index
            )
            return future.result()
        # Inline mode: the session's stage caches are not guaranteed
        # thread-safe, so inline execution is serialized.
        with self._session_lock:
            return _advise_with_session(self._session, payload, index)

    def _failed_result(self, job: Job, error: str) -> Optional[dict]:
        """A synthesized failed result, like the session's pool path makes.

        Mirrors :meth:`AdvisingSession._stream_pool
        <repro.api.session.AdvisingSession._stream_pool>`: a worker-process
        death still yields a well-formed ``advising_result`` whose ``error``
        carries the captured traceback.
        """
        try:
            request = AdvisingRequest.from_dict(job.payload)
            return AdvisingResult(
                request=request,
                index=job.index,
                label=job.label,
                arch_flag=request.arch_flag or self.config.arch_flag,
                sample_period=request.sample_period or self.config.sample_period,
                simulation_scope=(
                    request.simulation_scope or self.config.simulation_scope
                ),
                memory_model=request.memory_model or self.config.memory_model,
                error=error,
            ).to_dict()
        except Exception:  # pragma: no cover - payload was validated at submit
            return None

    def _replace_pool(self, broken) -> None:
        """Swap the observed-broken executor for a fresh one (daemon keeps
        serving).  A concurrent replacement wins: when every in-flight
        future of one dead pool fails at once, only the first worker thread
        to get here replaces it — the rest see a different (healthy)
        ``self._executor`` and leave it alone."""
        with self._state_lock:
            if self._state != "serving" or self._executor is not broken:
                return
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        if broken is not None:
            broken.shutdown(wait=False)
