"""repro.service — the persistent concurrent advising daemon.

The paper's GPA is a one-shot profiler-advisor; this package turns it into
a long-lived service.  One :class:`~repro.service.daemon.AdvisingDaemon`
multiplexes any number of clients over a single shared configuration,
profile cache and worker pool:

* a bounded FIFO :class:`~repro.service.queue.JobQueue` applies
  backpressure (HTTP 429) instead of accepting unbounded work;
* a :class:`~repro.service.jobs.JobStore` tracks every job through
  ``queued -> running -> done | failed`` and TTL-evicts settled results —
  or, with ``--store``, the SQLite-backed
  :class:`~repro.service.repository.JobRepository` persists jobs and their
  result wire forms so a killed-and-restarted daemon replays completed
  results byte-identically and requeues the interrupted backlog;
* concurrent identical submissions (same
  :meth:`~repro.api.request.AdvisingRequest.fingerprint`) **coalesce**
  onto one in-flight simulation, whose result fans out to every attached
  job (dedup counters surface in ``/v1/stats``);
* per-client bearer-token auth and token-bucket rate limiting
  (:class:`~repro.service.auth.AuthPolicy`) gate admission as HTTP
  middleware — 401/403/429-with-``Retry-After`` — while anonymous,
  unlimited local use stays the zero-config default;
* a versioned JSON-over-HTTP protocol
  (:mod:`repro.service.http`: ``POST /v1/advise``, ``POST /v1/batch``,
  ``POST /v1/lint``, ``GET /v1/jobs/<id>``, ``GET /v1/healthz``,
  ``GET /v1/stats``) validates every envelope against
  :data:`~repro.api.schema.API_SCHEMA_VERSION`;
* a :class:`~repro.service.client.ServiceClient` implements the same
  :class:`~repro.api.advisor.Advisor` protocol as
  :class:`~repro.api.session.AdvisingSession`
  (``advise``/``advise_many``/``stream``/``lint``), returning
  **bit-identical** reports;
* shutdown is graceful: drain the queue, settle every job, persist the
  profile cache, answer 503 to latecomers — exactly what the
  ``gpa-advise serve`` SIGTERM handler triggers.

Quickstart (see ``docs/SERVICE.md`` for the full protocol)::

    from repro.service import AdvisingDaemon, ServiceConfig, ServiceHTTPServer
    daemon = AdvisingDaemon(ServiceConfig(cache_dir=".gpa-cache"), workers=4).start()
    server = ServiceHTTPServer(("127.0.0.1", 8765), daemon)
    server.serve_forever()          # or: gpa-advise serve --port 8765

    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8765")
    result = client.advise(request)         # == session.advise(request), bit for bit
"""

from repro.service.auth import ANONYMOUS, AuthPolicy, TokenBucket
from repro.service.client import DEFAULT_POLL_INTERVAL, JobView, ServiceClient
from repro.service.daemon import AdvisingDaemon, DAEMON_STATES, ServiceConfig
from repro.service.errors import (
    AuthenticationError,
    AuthorizationError,
    QueueFullError,
    RateLimitedError,
    ServiceConnectionError,
    ServiceError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    ServiceValidationError,
    UnknownJobError,
)
from repro.service.http import ServiceHTTPServer, ServiceRequestHandler
from repro.service.jobs import (
    JOB_STATES,
    Job,
    JobCounts,
    JobRegistry,
    JobStore,
    TERMINAL_STATES,
)
from repro.service.queue import JobQueue
from repro.service.repository import (
    REPOSITORY_SCHEMA_VERSION,
    JobRepository,
    RepositoryStateError,
)

__all__ = [
    "ANONYMOUS",
    "AdvisingDaemon",
    "AuthPolicy",
    "AuthenticationError",
    "AuthorizationError",
    "DAEMON_STATES",
    "DEFAULT_POLL_INTERVAL",
    "Job",
    "JobCounts",
    "JobQueue",
    "JobRegistry",
    "JobRepository",
    "JobStore",
    "JobView",
    "JOB_STATES",
    "QueueFullError",
    "RateLimitedError",
    "REPOSITORY_SCHEMA_VERSION",
    "RepositoryStateError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceRequestHandler",
    "ServiceTimeoutError",
    "ServiceUnavailableError",
    "ServiceValidationError",
    "TokenBucket",
    "TERMINAL_STATES",
    "UnknownJobError",
]
