"""JSON-over-HTTP front end of the advising daemon.

A deliberately small, stdlib-only protocol (versioned under ``/v1/``, the
payloads versioned under :data:`~repro.api.schema.API_SCHEMA_VERSION`):

========  ==================  ==============================================
method    path                meaning
========  ==================  ==============================================
POST      ``/v1/advise``      ``{"request": <advising_request>}`` -> 202
                              ``{"job_id": ..., "state": "queued"}``
POST      ``/v1/batch``       ``{"requests": [<advising_request>, ...]}``
                              -> 202 ``{"job_ids": [...]}`` (atomic)
POST      ``/v1/lint``        ``{"request": <advising_request>}`` -> 200
                              ``static_report`` envelope (synchronous)
GET       ``/v1/jobs/<id>``   job state + the ``advising_result`` envelope
GET       ``/v1/healthz``     liveness + daemon state + config echo
GET       ``/v1/stats``       queue depth, cache hit rate, jobs served
========  ==================  ==============================================

Envelopes are validated strictly — a request whose ``schema_version`` or
``kind`` does not match this build is a 400, never a silent misparse — and
error responses carry a one-line message, **never a traceback**, plus a
stable ``error_kind`` (429 alone is ambiguous: queue backpressure vs. rate
limiting).  Admission failures map onto status codes: 400 malformed,
401/403 auth (the :class:`~repro.service.auth.AuthPolicy` middleware;
``/v1/healthz`` stays credential-free and only POSTs spend rate-limit
tokens), 404 unknown job, 429 queue full or rate limited (the latter with
``Retry-After``), 503 draining.

The server is a :class:`ThreadingHTTPServer`: each connection gets a
handler thread, every handler funnels into the same
:class:`~repro.service.daemon.AdvisingDaemon`, whose queue and store are
thread-safe.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.service.auth import AuthPolicy
from repro.service.daemon import AdvisingDaemon
from repro.service.errors import (
    AuthenticationError,
    RateLimitedError,
    ServiceValidationError,
    UnknownJobError,
    kind_for_error,
    status_for_error,
)

#: Largest request body the daemon will read, as a guard against a client
#: (or a stray process) streaming unbounded data at the service.
MAX_BODY_BYTES = 64 * 1024 * 1024


class ServiceHTTPServer(ThreadingHTTPServer):
    """The daemon's listening socket; holds the shared ``AdvisingDaemon``."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], advising_daemon: AdvisingDaemon,
                 quiet: bool = True, auth: Optional[AuthPolicy] = None):
        self.advising_daemon = advising_daemon
        self.quiet = quiet
        #: The admission middleware; the default policy is anonymous and
        #: unlimited, so a plain local daemon needs no configuration.
        self.auth = auth if auth is not None else AuthPolicy()
        super().__init__(address, ServiceRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server_version = "gpa-advise-service"
    # Keep-alive: a waiting client polls its job every few tens of
    # milliseconds, and every reply carries Content-Length, so HTTP/1.1
    # persistent connections are safe and save a TCP handshake per poll.
    # Error replies close the connection (see `_reply`) because some error
    # paths answer before draining the request body.
    protocol_version = "HTTP/1.1"
    # An idle persistent connection may not hold a handler thread forever.
    timeout = 60.0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server's casing)
        daemon = self.server.advising_daemon
        try:
            if self.path == "/v1/healthz":
                # Liveness stays credential-free: a router health-checking
                # its daemons must never need a token.
                self._reply(200, daemon.healthz())
                return
            self._authorize(spend=False)
            if self.path == "/v1/stats":
                stats = daemon.stats()
                stats["auth"] = self.server.auth.describe()
                self._reply(200, stats)
            elif self.path.startswith("/v1/jobs/"):
                job_id = self.path[len("/v1/jobs/"):]
                if not job_id or "/" in job_id:
                    raise UnknownJobError(f"unknown job id {job_id!r}")
                self._reply(200, daemon.job_view(job_id))
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})
        except Exception as exc:
            self._reply_error(exc)

    def do_POST(self) -> None:  # noqa: N802
        daemon = self.server.advising_daemon
        try:
            # Submissions authenticate *and* spend a rate-limit token —
            # they are the expensive admissions the bucket protects.
            self._authorize(spend=True)
            body = self._read_json()
            if self.path == "/v1/advise":
                payload = self._require(body, "request")
                job_id = daemon.submit(payload)
                self._reply(202, {"job_id": job_id, "state": "queued"})
            elif self.path == "/v1/batch":
                payloads = self._require(body, "requests")
                job_ids = daemon.submit_batch(payloads)
                self._reply(
                    202,
                    {"job_ids": job_ids, "count": len(job_ids), "state": "queued"},
                )
            elif self.path == "/v1/lint":
                payload = self._require(body, "request")
                self._reply(200, daemon.lint(payload))
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})
        except Exception as exc:
            self._reply_error(exc)

    def _authorize(self, spend: bool) -> str:
        """The auth middleware: who is this, and may they do this now?"""
        policy = self.server.auth
        client = policy.authenticate(self.headers.get("Authorization"))
        if spend:
            policy.check_rate(client)
        return client

    def do_PUT(self) -> None:  # noqa: N802
        self._reply(405, {"error": "method not allowed"})

    do_DELETE = do_PUT

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceValidationError("request body is required")
        if length > MAX_BODY_BYTES:
            raise ServiceValidationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ServiceValidationError(
                f"request body is not valid JSON: {exc}"
            ) from exc
        if not isinstance(body, dict):
            raise ServiceValidationError(
                f"request body must be a JSON object, got "
                f"{type(body).__name__}"
            )
        return body

    @staticmethod
    def _require(body: dict, key: str):
        try:
            return body[key]
        except KeyError:
            raise ServiceValidationError(
                f"request body is missing the {key!r} field"
            ) from None

    def _reply(self, status: int, payload: dict,
               headers: Optional[Dict[str, str]] = None) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # An errored request may not have had its body read (405s,
            # missing Content-Length); reusing the connection would desync
            # the stream, so close it.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(data)

    def _reply_error(self, exc: Exception) -> None:
        # One line, no traceback: internals never leak into the protocol.
        status = status_for_error(exc)
        message = str(exc) if status != 500 else f"internal error: {exc}"
        body = {"error": message, "status": status,
                "error_kind": kind_for_error(exc)}
        headers: Dict[str, str] = {}
        if isinstance(exc, AuthenticationError):
            headers["WWW-Authenticate"] = "Bearer"
        if isinstance(exc, RateLimitedError) and exc.retry_after is not None:
            # HTTP Retry-After is whole seconds; the exact (fractional)
            # delay also rides in the body for precise clients.
            headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after)))
            body["retry_after"] = round(exc.retry_after, 6)
        try:
            self._reply(status, body, headers=headers)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # the client hung up first; nothing left to tell it

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", True):  # pragma: no cover
            super().log_message(format, *args)
