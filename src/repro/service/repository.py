"""The SQLite-backed durable job repository.

:class:`JobRepository` is the persistent twin of the in-memory
:class:`~repro.service.jobs.JobStore`: same :class:`JobRegistry
<repro.service.jobs.JobRegistry>` contract, but every job — its validated
request payload, its state transitions, and its terminal
``advising_result`` wire form — lives in a SQLite file, so a daemon that is
killed and restarted keeps serving the results it already computed.  Replay
is *byte-identical*: result envelopes are stored as the JSON text of the
exact dict the worker produced, and JSON object order round-trips, so a
``GET /v1/jobs/<id>`` after a restart serializes the same bytes it would
have before the crash.

Durability choices:

- **WAL mode** so readers (HTTP handler threads, a second daemon sharing
  the store) never block behind the writer, plus a generous
  ``busy_timeout`` so two daemons on one host contend gracefully.
- **One connection, one lock.**  The repository serializes its own access
  through an :class:`threading.RLock` around a single
  ``check_same_thread=False`` connection — simpler than a connection pool
  and plenty for a job registry whose rows are small.
- **Wall-clock timestamps.**  ``time.time`` (not ``time.monotonic``) is
  the default clock: monotonic readings are meaningless across processes,
  and TTL eviction must keep working after a restart.  The clock stays
  injectable for deterministic tests.
- **Schema-versioned.**  A ``meta`` table records the repository schema
  *and* the API schema the stored wire forms speak; opening a store
  written by an incompatible build raises :class:`RepositoryStateError`
  instead of replaying payloads a strict loader would reject halfway
  through a request.
- **Persistent counters.**  Throughput counters live in a ``counters``
  table so ``/v1/stats`` survives restarts along with the jobs it
  describes.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Union

from repro.api.schema import API_SCHEMA_VERSION
from repro.service.errors import ServiceError, UnknownJobError
from repro.service.jobs import Job, JobCounts, TERMINAL_STATES, new_job_id

#: Version of the on-disk layout.  Bump when tables/columns change shape.
REPOSITORY_SCHEMA_VERSION = 1

#: How long (ms) SQLite waits on a locked database before erroring — sized
#: for multiple daemons sharing one store on one host.
BUSY_TIMEOUT_MS = 10_000

_COUNTER_NAMES = ("submitted", "done", "failed", "aborted", "evicted", "coalesced")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    job_id         TEXT PRIMARY KEY,
    idx            INTEGER NOT NULL,
    payload        TEXT NOT NULL,
    label          TEXT NOT NULL,
    state          TEXT NOT NULL,
    result         TEXT,
    error          TEXT,
    coalesced_with TEXT,
    submitted_at   REAL NOT NULL,
    started_at     REAL,
    finished_at    REAL
);
CREATE INDEX IF NOT EXISTS jobs_by_state ON jobs(state);
CREATE TABLE IF NOT EXISTS counters (
    name  TEXT PRIMARY KEY,
    value INTEGER NOT NULL
);
"""


class RepositoryStateError(ServiceError):
    """The store on disk was written by an incompatible build."""


class JobRepository:
    """A :class:`~repro.service.jobs.JobRegistry` persisted in SQLite.

    ``ttl`` has the same meaning as on :class:`JobStore` — how long a
    *terminal* job's result stays queryable (``None`` disables eviction) —
    and eviction follows the same contract: piggybacked on access plus an
    explicit :meth:`evict` the daemon can schedule.
    """

    def __init__(self, path: Union[str, Path], ttl: Optional[float] = 900.0,
                 clock: Callable[[], float] = time.time):
        if ttl is not None and ttl <= 0:
            raise ValueError(f"job ttl must be positive (or None), got {ttl}")
        self.path = Path(path)
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.RLock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # isolation_level=None: autocommit, with explicit BEGIN IMMEDIATE
        # where multiple statements must land together.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None,
            timeout=BUSY_TIMEOUT_MS / 1000.0,
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._init_schema()

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        with self._lock:
            # executescript() commits implicitly, so DDL runs outside the
            # meta/counters transaction (IF NOT EXISTS makes it idempotent).
            self._conn.executescript(_SCHEMA)
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._check_meta("repository_schema", REPOSITORY_SCHEMA_VERSION)
                self._check_meta("api_schema", API_SCHEMA_VERSION)
                for name in _COUNTER_NAMES:
                    self._conn.execute(
                        "INSERT OR IGNORE INTO counters(name, value) VALUES (?, 0)",
                        (name,),
                    )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

    def _check_meta(self, key: str, expected: int) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta(key, value) VALUES (?, ?)", (key, str(expected))
            )
        elif row[0] != str(expected):
            raise RepositoryStateError(
                f"job store {self.path} was written with {key}={row[0]} but "
                f"this build speaks {key}={expected}; point the daemon at a "
                f"fresh --store path (or delete the stale one)"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create(self, payload: dict, label: str, index: int = 0) -> Job:
        job = Job(
            job_id=new_job_id(), index=index, payload=payload, label=label,
            submitted_at=self._clock(),
        )
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._evict_in_txn()
                self._conn.execute(
                    "INSERT INTO jobs(job_id, idx, payload, label, state,"
                    " submitted_at) VALUES (?, ?, ?, ?, ?, ?)",
                    (job.job_id, job.index, json.dumps(payload), job.label,
                     job.state, job.submitted_at),
                )
                self._bump("submitted", 1)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
        return job

    def discard(self, job_id: str) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "DELETE FROM jobs WHERE job_id = ?", (job_id,)
                )
                if cursor.rowcount:
                    self._bump("submitted", -1)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")

    def mark_running(self, job_id: str) -> Job:
        now = self._clock()
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?"
                " WHERE job_id = ?",
                (now, job_id),
            )
            return self.get(job_id)

    def attach(self, job_id: str, primary_id: str) -> Job:
        """Record that ``job_id`` coalesced onto ``primary_id``'s run."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "UPDATE jobs SET coalesced_with = ? WHERE job_id = ?",
                    (primary_id, job_id),
                )
                self._bump("coalesced", 1)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return self.get(job_id)

    def finish(self, job_id: str, result: Optional[dict],
               error: Optional[str]) -> Job:
        return self._settle(job_id, result, error, aborted=False)

    def abort(self, job_id: str, error: str) -> Job:
        return self._settle(job_id, None, error, aborted=True)

    def _settle(self, job_id: str, result: Optional[dict],
                error: Optional[str], aborted: bool) -> Job:
        state = "failed" if error is not None else "done"
        now = self._clock()
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                cursor = self._conn.execute(
                    "UPDATE jobs SET state = ?, result = ?, error = ?,"
                    " finished_at = ?,"
                    " started_at = COALESCE(started_at, ?)"
                    " WHERE job_id = ?",
                    (state, None if result is None else json.dumps(result),
                     error, now, now, job_id),
                )
                if not cursor.rowcount:
                    raise self._unknown(job_id)
                counter = ("aborted" if aborted
                           else "failed" if error is not None else "done")
                self._bump(counter, 1)
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return self.get(job_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Job:
        with self._lock:
            self._evict()
            row = self._conn.execute(
                "SELECT job_id, idx, payload, label, state, result, error,"
                " coalesced_with, submitted_at, started_at, finished_at"
                " FROM jobs WHERE job_id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            raise self._unknown(job_id)
        return self._materialize(row)

    def view(self, job_id: str) -> dict:
        return self.get(job_id).view()

    def pending(self) -> List[str]:
        """Ids of every non-terminal job, submission order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT job_id FROM jobs WHERE state NOT IN (?, ?)"
                " ORDER BY rowid",
                TERMINAL_STATES,
            ).fetchall()
        return [row[0] for row in rows]

    def recover(self) -> List[str]:
        """Heal crash leftovers and return the job ids to re-enqueue.

        Jobs the dead daemon had marked ``running`` never finished — their
        worker died with the process — so they go back to ``queued`` (a
        simulation is pure; re-running it is always safe).  Returns every
        queued id in original submission order for
        :meth:`~repro.service.queue.JobQueue.restore`.
        """
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "UPDATE jobs SET state = 'queued', started_at = NULL"
                    " WHERE state = 'running'"
                )
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return self.pending()

    @property
    def counts(self) -> JobCounts:
        """The persisted throughput counters, as a :class:`JobCounts`."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, value FROM counters"
            ).fetchall()
        return JobCounts(**{name: value for name, value in rows})

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM jobs WHERE job_id = ?", (job_id,)
            ).fetchone()
        return row is not None

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def evict(self) -> int:
        """Drop terminal jobs older than ``ttl``; returns how many."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                evicted = self._evict_in_txn()
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
            self._conn.execute("COMMIT")
            return evicted

    def _evict(self) -> int:
        """Eviction for callers not already inside a transaction."""
        if self.ttl is None:
            return 0
        return self.evict()

    def _evict_in_txn(self) -> int:
        if self.ttl is None:
            return 0
        deadline = self._clock() - self.ttl
        cursor = self._conn.execute(
            "DELETE FROM jobs WHERE state IN (?, ?)"
            " AND finished_at IS NOT NULL AND finished_at <= ?",
            (*TERMINAL_STATES, deadline),
        )
        if cursor.rowcount:
            self._bump("evicted", cursor.rowcount)
        return cursor.rowcount

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def _bump(self, name: str, delta: int) -> None:
        self._conn.execute(
            "UPDATE counters SET value = value + ? WHERE name = ?",
            (delta, name),
        )

    def _materialize(self, row: tuple) -> Job:
        (job_id, index, payload, label, state, result, error,
         coalesced_with, submitted_at, started_at, finished_at) = row
        return Job(
            job_id=job_id, index=index, payload=json.loads(payload),
            label=label, state=state,
            result=None if result is None else json.loads(result),
            error=error, submitted_at=submitted_at, started_at=started_at,
            finished_at=finished_at, coalesced_with=coalesced_with,
        )

    def _unknown(self, job_id: str) -> UnknownJobError:
        return UnknownJobError(
            f"unknown job id {job_id!r} (never submitted, its result "
            f"outlived the {self.ttl}s retention window, or it lives in a "
            f"different job store)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobRepository(path={str(self.path)!r}, jobs={len(self)})"
