#!/usr/bin/env python
"""Lockstep linter for the two simulator cores.

``repro/sampling/simulator.py`` (the object core) and
``repro/sampling/vector.py`` (the array core) implement the same scheduling
semantics twice — that is the whole point of the ``simulator_backend`` knob,
and the backend-equivalence tests pin their *outputs* bit-for-bit.  This
tool pins their *sources*: it AST-parses both files and fails when the
structural invariants that keep the cores honest drift apart, so a patch
that teaches one core a new stall reason (or quietly mutates state on the
sampler's observation path) fails CI before any simulation runs.

Checked invariants:

1. **Stall-reason coverage** — both modules must reference exactly the same
   set of ``StallReason`` members (aliases like ``EXEC_DEP =
   StallReason.EXECUTION_DEPENDENCY`` count as references).
2. **Flag coverage** — every ``_F_*`` bit the vector core defines must be
   consulted by both ``_pack_warp`` (the encoder) and its ``check`` routine;
   an encoded-but-never-checked flag is dead weight, a checked-but-never-
   encoded flag can never fire.
3. **Observation purity** — inside each core's ``check`` routine, every
   state mutation (attribute/subscript stores, writes to ``nonlocal``
   names, mutating method calls such as ``heappop``/``.add``) must be
   guarded by ``commit`` or delegate via a ``commit=commit`` keyword, so
   the PC sampler's ``commit=False`` probes stay observation-neutral.
4. **Sampler probes** — each core's ``record_sample`` must call ``check``
   with an explicit ``commit=False``.

Usage::

    python tools/lint_core_lockstep.py            # lint the in-tree cores
    python tools/lint_core_lockstep.py A.py B.py  # lint an explicit pair
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SIMULATOR = REPO_ROOT / "src" / "repro" / "sampling" / "simulator.py"
DEFAULT_VECTOR = REPO_ROOT / "src" / "repro" / "sampling" / "vector.py"

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "heappop",
        "heappush",
        "insert",
        "pop",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


@dataclass
class CoreSummary:
    """Everything the comparisons need from one core module."""

    path: Path
    #: ``StallReason`` member names referenced anywhere in the module.
    stall_reasons: Set[str] = field(default_factory=set)
    #: ``_F_*`` names referenced per function of interest (and defined at
    #: module level, under key ``"<module>"``).
    flags: Dict[str, Set[str]] = field(default_factory=dict)
    #: Human-readable purity violations found in ``check``.
    purity_violations: List[str] = field(default_factory=list)
    #: Whether ``record_sample`` probes ``check(..., commit=False)``.
    sampler_probes_without_commit: bool = False
    has_check: bool = False
    has_record_sample: bool = False


def _is_commit_guard(test: ast.expr) -> bool:
    """Whether an ``if`` test gates its body on ``commit`` being truthy."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return False
    return any(
        isinstance(node, ast.Name) and node.id == "commit"
        for node in ast.walk(test)
    )


def _passes_commit_through(node: ast.Call) -> bool:
    """Whether a call forwards the caller's ``commit`` flag verbatim."""
    return any(
        keyword.arg == "commit"
        and isinstance(keyword.value, ast.Name)
        and keyword.value.id == "commit"
        for keyword in node.keywords
    )


class _PurityChecker(ast.NodeVisitor):
    """Finds state mutations on the non-commit path of a ``check`` routine."""

    def __init__(self, function: ast.FunctionDef) -> None:
        self.violations: List[str] = []
        self._guard_depth = 0
        self._nonlocals: Set[str] = {
            name
            for statement in ast.walk(function)
            if isinstance(statement, ast.Nonlocal)
            for name in statement.names
        }
        for statement in function.body:
            self.visit(statement)

    def _flag(self, node: ast.AST, what: str) -> None:
        if self._guard_depth == 0:
            self.violations.append(f"line {node.lineno}: {what}")

    def visit_If(self, node: ast.If) -> None:
        guarded = _is_commit_guard(node.test)
        if guarded:
            self._guard_depth += 1
        for statement in node.body:
            self.visit(statement)
        if guarded:
            self._guard_depth -= 1
        for statement in node.orelse:
            self.visit(statement)

    def _check_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            self._flag(target, f"unguarded store to {ast.unparse(target)}")
        elif isinstance(target, ast.Name) and target.id in self._nonlocals:
            self._flag(target, f"unguarded write to nonlocal {target.id!r}")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
            and not _passes_commit_through(node)
        ):
            self._flag(node, f"unguarded mutating call {ast.unparse(node)}")
        self.generic_visit(node)


def _find_function(tree: ast.AST, name: str) -> Optional[ast.FunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _flag_refs(node: ast.AST) -> Set[str]:
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and child.id.startswith("_F_")
    }


def _probes_without_commit(record_sample: ast.FunctionDef) -> bool:
    for node in ast.walk(record_sample):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Name) and node.func.id == "check"):
            continue
        for keyword in node.keywords:
            if keyword.arg == "commit" and isinstance(
                keyword.value, ast.Constant
            ):
                if keyword.value.value is False:
                    return True
    return False


def summarize_core(path: Path) -> CoreSummary:
    """Parse one core module and collect the lockstep-relevant facts."""
    tree = ast.parse(path.read_text(), filename=str(path))
    summary = CoreSummary(path=path)

    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "StallReason"
        ):
            summary.stall_reasons.add(node.attr)

    summary.flags["<module>"] = {
        target.id
        for node in ast.walk(tree)
        if isinstance(node, ast.Assign)
        for target in node.targets
        if isinstance(target, ast.Name) and target.id.startswith("_F_")
    }
    for name in ("_pack_warp", "check", "issue"):
        function = _find_function(tree, name)
        if function is not None:
            summary.flags[name] = _flag_refs(function)

    check = _find_function(tree, "check")
    if check is not None:
        summary.has_check = True
        summary.purity_violations = _PurityChecker(check).violations

    record_sample = _find_function(tree, "record_sample")
    if record_sample is not None:
        summary.has_record_sample = True
        summary.sampler_probes_without_commit = _probes_without_commit(
            record_sample
        )

    return summary


def compare_cores(simulator: CoreSummary, vector: CoreSummary) -> List[str]:
    """All lockstep violations between the two summaries."""
    problems: List[str] = []

    for summary in (simulator, vector):
        if not summary.has_check:
            problems.append(f"{summary.path}: no check() routine found")
        if not summary.has_record_sample:
            problems.append(f"{summary.path}: no record_sample() routine found")

    only_simulator = simulator.stall_reasons - vector.stall_reasons
    only_vector = vector.stall_reasons - simulator.stall_reasons
    if only_simulator:
        problems.append(
            f"stall reasons only in {simulator.path.name}: "
            f"{sorted(only_simulator)}"
        )
    if only_vector:
        problems.append(
            f"stall reasons only in {vector.path.name}: {sorted(only_vector)}"
        )

    defined_flags = vector.flags.get("<module>", set())
    if defined_flags:
        encoded = vector.flags.get("_pack_warp")
        if encoded is None:
            problems.append(f"{vector.path}: no _pack_warp() to encode _F_* flags")
        else:
            never_encoded = defined_flags - encoded
            if never_encoded:
                problems.append(
                    f"{vector.path.name}: _pack_warp() never encodes "
                    f"{sorted(never_encoded)}"
                )
        consumed = vector.flags.get("check", set()) | vector.flags.get("issue", set())
        never_consumed = defined_flags - consumed
        if never_consumed:
            problems.append(
                f"{vector.path.name}: neither check() nor issue() consults "
                f"{sorted(never_consumed)}"
            )

    for summary in (simulator, vector):
        for violation in summary.purity_violations:
            problems.append(
                f"{summary.path.name}: check() mutates state outside a "
                f"commit guard — {violation}"
            )
        if summary.has_record_sample and not summary.sampler_probes_without_commit:
            problems.append(
                f"{summary.path.name}: record_sample() never probes "
                "check(..., commit=False); sampling would perturb timing"
            )

    return problems


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if len(args) == 2:
        simulator_path, vector_path = Path(args[0]), Path(args[1])
    elif not args:
        simulator_path, vector_path = DEFAULT_SIMULATOR, DEFAULT_VECTOR
    else:
        print(
            "usage: lint_core_lockstep.py [SIMULATOR.py VECTOR.py]",
            file=sys.stderr,
        )
        return 2

    summaries = []
    for path in (simulator_path, vector_path):
        try:
            summaries.append(summarize_core(path))
        except OSError as exc:
            print(
                f"lockstep lint: cannot read core module {path}: "
                f"{exc.strerror or exc}",
                file=sys.stderr,
            )
            return 2
        except SyntaxError as exc:
            print(
                f"lockstep lint: cannot parse core module {path}: {exc}",
                file=sys.stderr,
            )
            return 2
    problems = compare_cores(*summaries)
    if problems:
        print(f"lockstep lint: {len(problems)} problem(s) found:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(
        f"lockstep lint: {simulator_path.name} and {vector_path.name} agree "
        "(stall reasons, flag coverage, observation purity, sampler probes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
