#!/usr/bin/env python
"""Hygiene check for the committed SASS corpus.

The corpus has three coupled artifacts: the listings under
``tests/sass/corpus/``, the manifest in :mod:`repro.sass.corpus`, and the
byte-pinned golden lint reports under ``tests/sass/golden/``.  A listing
added without a manifest entry is never linted; a manifest entry without a
golden is never pinned; a stale golden pins the wrong bytes.  This tool
fails CI when the three drift apart:

1. Every manifest case's listing file exists, and every ``*.sass`` file in
   the corpus directory is claimed by exactly one manifest case.
2. Every manifest case has a golden report, and every golden report file
   belongs to a manifest case.
3. Each golden's ``case_id`` matches its manifest case, and its recorded
   ingest coverage meets the corpus floor (>= 95% decoded instructions).
4. Re-ingesting each listing reproduces the golden's coverage numbers —
   catches listings edited without regenerating goldens (the byte-exact
   diff itself is CI's regenerate-and-compare step).

Usage::

    python tools/check_sass_corpus.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

CORPUS_DIR = REPO_ROOT / "tests" / "sass" / "corpus"
GOLDEN_DIR = REPO_ROOT / "tests" / "sass" / "golden"
COVERAGE_FLOOR = 0.95


def check_corpus() -> List[str]:
    from repro.sass.corpus import SASS_CORPUS
    from repro.sass.frontend import ingest_file

    problems: List[str] = []

    claimed = {}
    for case in SASS_CORPUS:
        if case.filename in claimed:
            problems.append(
                f"{case.case_id} and {claimed[case.filename]} both claim "
                f"listing {case.filename}"
            )
        claimed[case.filename] = case.case_id

    on_disk = {path.name for path in CORPUS_DIR.glob("*.sass")}
    for case in SASS_CORPUS:
        if case.filename not in on_disk:
            problems.append(
                f"{case.case_id}: listing {case.filename} missing from "
                f"{CORPUS_DIR}"
            )
    for orphan in sorted(on_disk - set(claimed)):
        problems.append(
            f"{CORPUS_DIR / orphan}: listing has no manifest entry in "
            "repro.sass.corpus"
        )

    goldens_on_disk = {path.name for path in GOLDEN_DIR.glob("*.json")}
    expected_goldens = {f"{case.golden_name}.json": case for case in SASS_CORPUS}
    for name, case in sorted(expected_goldens.items()):
        if name not in goldens_on_disk:
            problems.append(
                f"{case.case_id}: golden report {name} missing from "
                f"{GOLDEN_DIR} (regenerate with gpa-advise lint --sass-corpus "
                "--output json --output-dir tests/sass/golden)"
            )
    for orphan in sorted(goldens_on_disk - set(expected_goldens)):
        problems.append(
            f"{GOLDEN_DIR / orphan}: golden report has no manifest entry"
        )

    for name, case in sorted(expected_goldens.items()):
        golden_path = GOLDEN_DIR / name
        if name not in goldens_on_disk or case.filename not in on_disk:
            continue
        golden = json.loads(golden_path.read_text())
        if golden.get("case_id") != case.case_id:
            problems.append(
                f"{golden_path.name}: case_id {golden.get('case_id')!r} does "
                f"not match manifest entry {case.case_id!r}"
            )
        pinned = golden.get("ingest") or {}
        _, ingest = ingest_file(
            CORPUS_DIR / case.filename, default_arch=case.arch_flag
        )
        if ingest.coverage < COVERAGE_FLOOR:
            problems.append(
                f"{case.case_id}: decode coverage {ingest.coverage:.2%} is "
                f"below the corpus floor ({COVERAGE_FLOOR:.0%})"
            )
        for key, live in (
            ("total", ingest.total),
            ("decoded", ingest.decoded),
            ("coverage", ingest.coverage),
        ):
            if pinned.get(key) != live:
                problems.append(
                    f"{case.case_id}: golden ingest {key}={pinned.get(key)!r} "
                    f"but re-ingesting the listing gives {live!r} — "
                    "regenerate the goldens"
                )

    return problems


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if args:
        print("usage: check_sass_corpus.py", file=sys.stderr)
        return 2
    for directory in (CORPUS_DIR, GOLDEN_DIR):
        if not directory.is_dir():
            print(
                f"corpus hygiene: directory {directory} does not exist",
                file=sys.stderr,
            )
            return 2

    problems = check_corpus()
    if problems:
        print(f"corpus hygiene: {len(problems)} problem(s) found:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    from repro.sass.corpus import SASS_CORPUS

    print(
        f"corpus hygiene: {len(SASS_CORPUS)} listings, manifest and goldens "
        "agree (files, case ids, decode coverage)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
