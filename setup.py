"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml`` (src layout, console
script, optional test dependencies); this file exists so that environments
without the ``wheel`` package (where PEP 660 editable installs are
unavailable) can still do ``pip install -e . --no-use-pep517`` or
``python setup.py develop``.  CI's ``package`` job proves the sdist/wheel
path works by installing into a clean prefix and running the CLI without
``PYTHONPATH``.
"""

from setuptools import setup

setup()
