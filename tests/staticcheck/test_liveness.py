"""Register liveness, dead writes, pressure, reaching definitions."""

from repro.staticcheck.liveness import (
    Definition,
    analyze_liveness,
    analyze_reaching_definitions,
)


def test_straight_line_live_in(make_cfg):
    cfg = make_cfg(
        """
        IADD R1, R2, R3
        STG.E.32 [R4], R1
        EXIT
        """
    )
    analysis = analyze_liveness(cfg)
    # R2/R3 feed the add, R4+R5 the 64-bit store address; R1 is defined
    # locally (global memory operands always use a register pair).
    assert analysis.live_in[cfg.entry_index] == frozenset({2, 3, 4, 5})


def test_dead_write_detected_and_sorted(make_cfg):
    cfg = make_cfg(
        """
        MOV R1, 0x1
        MOV R5, 0x7
        MOV R1, 0x2
        STG.E.32 [R2], R1
        EXIT
        """
    )
    analysis = analyze_liveness(cfg)
    assert [(write.offset, write.register) for write in analysis.dead_writes] == [
        (0x0, 1),   # first MOV R1 clobbered before any read
        (0x10, 5),  # R5 never read at all
    ]


def test_predicated_write_neither_kills_nor_dies(make_cfg):
    cfg = make_cfg(
        """
        MOV R1, 0x1
        @P0 MOV R1, 0x2
        STG.E.32 [R2], R1
        EXIT
        """
    )
    analysis = analyze_liveness(cfg)
    # The predicated write only *may* happen: the first MOV can still be
    # read, so nothing here is dead.
    assert analysis.dead_writes == []


def test_rz_is_not_tracked(make_cfg):
    cfg = make_cfg(
        """
        IADD R1, R2, RZ
        STS.32 [R3], R1
        EXIT
        """
    )
    analysis = analyze_liveness(cfg)
    assert 255 not in analysis.live_in[cfg.entry_index]
    assert analysis.live_in[cfg.entry_index] == frozenset({2, 3})


def test_loop_carried_value_is_live_around_back_edge(make_cfg):
    cfg = make_cfg(
        """
        MOV R1, 0x0
        MOV R2, 0x40
        LOOP:
        IADD R1, R1, R3
        ISETP.LT.AND P0, R1, R2
        @P0 BRA LOOP
        EXIT
        """
    )
    analysis = analyze_liveness(cfg)
    header = [block.index for block in cfg.blocks if block.start_offset == 0x20]
    assert len(header) == 1
    # The accumulator, the bound and the stride are all live into the header.
    assert analysis.live_in[header[0]] == frozenset({1, 2, 3})


def test_pressure_counts_simultaneously_live_registers(make_cfg):
    cfg = make_cfg(
        """
        MOV R1, 0x1
        MOV R2, 0x2
        MOV R3, 0x3
        IADD R4, R1, R2
        IADD R4, R4, R3
        STS.32 [R5], R4
        EXIT
        """
    )
    analysis = analyze_liveness(cfg)
    # At the peak, R1 R2 R3 and the shared-store address R5 are live together.
    assert analysis.max_pressure == 4
    assert analysis.max_pressure_offset is not None
    assert analysis.block_pressure[cfg.entry_index] == 4


def test_reaching_definitions_merge_at_join(make_cfg):
    cfg = make_cfg(
        """
        ISETP.LT.AND P0, R1, R2
        @P0 BRA ELSE
        MOV R3, 0x1
        BRA JOIN
        ELSE:
        MOV R3, 0x2
        JOIN:
        STG.E.32 [R4], R3
        EXIT
        """
    )
    reaching = analyze_reaching_definitions(cfg)
    join = [block.index for block in cfg.blocks if block.start_offset == 0x50]
    assert len(join) == 1
    assert reaching.definitions_of(join[0], 3) == [
        Definition(offset=0x20, register=3),
        Definition(offset=0x40, register=3),
    ]


def test_reaching_definitions_unconditional_write_kills(make_cfg):
    cfg = make_cfg(
        """
        MOV R1, 0x1
        BRA NEXT
        NEXT:
        MOV R1, 0x2
        STG.E.32 [R2], R1
        EXIT
        """
    )
    reaching = analyze_reaching_definitions(cfg)
    exit_block = max(block.index for block in cfg.blocks)
    live_defs = [
        definition
        for definition in reaching.reach_out[exit_block]
        if definition.register == 1
    ]
    assert live_defs == [Definition(offset=0x20, register=1)]


def test_predicated_definition_does_not_kill(make_cfg):
    cfg = make_cfg(
        """
        MOV R1, 0x1
        BRA NEXT
        NEXT:
        @P0 MOV R1, 0x2
        STG.E.32 [R2], R1
        EXIT
        """
    )
    reaching = analyze_reaching_definitions(cfg)
    exit_block = max(block.index for block in cfg.blocks)
    offsets = sorted(
        definition.offset
        for definition in reaching.reach_out[exit_block]
        if definition.register == 1
    )
    assert offsets == [0x0, 0x20]
