"""Corner cases of the static checker on ingested real-SASS shapes.

Three shapes real disassembly produces that in-repo generated kernels never
did: unknown opcodes *inside* a loop body (liveness must stay sound across
the back edge), branches whose target lands mid-block (the CFG must split
the block at the leader), and a predicated branch as the very last
instruction of a function (the fall-through edge leaves the listing).
"""

import pytest

from repro.cfg.graph import build_cfg
from repro.cfg.loops import find_loops
from repro.sass.frontend import ingest_listing
from repro.sass.lint import lint_listing

UNKNOWN_IN_LOOP = """\
MOV R1, c[0x0][0x28]
MOV R0, RZ
MOV R5, RZ
LOOP:
ISETP.GE.AND P0, PT, R0, 0x40, PT
@P0 BRA DONE
MYSTERY.OP R5, R5, R0
IADD3 R0, R0, 0x1, RZ
BRA LOOP
DONE:
STG.E [R2.64], R5
EXIT
"""

MID_BLOCK_BRANCH = """\
/*0000*/ MOV R1, c[0x0][0x28]
/*0010*/ ISETP.GE.AND P0, PT, R0, 0x10, PT
/*0020*/ @P0 BRA 0x50
/*0030*/ IADD3 R2, R2, 0x1, RZ
/*0040*/ IADD3 R2, R2, 0x2, RZ
/*0050*/ IADD3 R2, R2, 0x4, RZ
/*0060*/ STG.E [R4.64], R2
/*0070*/ EXIT
"""

PREDICATED_BRANCH_AT_END = """\
MOV R1, c[0x0][0x28]
ISETP.GE.AND P0, PT, R0, 0x10, PT
TAIL:
@P0 BRA TAIL
"""


def _function(text, **kwargs):
    cubin, _report = ingest_listing(text, **kwargs)
    (name,) = cubin.functions
    return cubin.functions[name]


class TestUnknownOpcodeInLoopBody:
    def test_lint_never_raises_and_reports_the_unknown(self):
        report = lint_listing(UNKNOWN_IN_LOOP)
        unknown = report.diagnostics_for("unknown-opcode")
        assert len(unknown) == 1
        assert unknown[0].details["opcode"] == "MYSTERY.OP"

    def test_liveness_stays_sound_across_the_back_edge(self):
        """R5 is only *may*-written by the unknown op, so neither its
        initialization nor the loop-carried value is a dead write."""
        report = lint_listing(UNKNOWN_IN_LOOP)
        dead = {
            diagnostic.details["register"]
            for diagnostic in report.diagnostics_for("dead-register-write")
        }
        assert 5 not in dead
        assert 0 not in dead  # the induction variable feeds the back edge

    def test_loop_is_recovered_around_the_unknown_op(self):
        function = _function(UNKNOWN_IN_LOOP)
        cfg = build_cfg(function.instructions)
        loops = find_loops(cfg)
        assert loops.loops, "the BRA LOOP back edge must survive"


class TestBranchToMidBlockOffset:
    def test_target_offset_becomes_a_block_leader(self):
        function = _function(MID_BLOCK_BRANCH)
        cfg = build_cfg(function.instructions)
        leaders = {block.instructions[0].offset for block in cfg.blocks}
        assert 0x50 in leaders
        # The straight-line run 0x30..0x50 is split at the branch target.
        containing = [
            block
            for block in cfg.blocks
            if any(i.offset == 0x40 for i in block.instructions)
        ]
        assert all(
            not any(i.offset == 0x50 for i in block.instructions)
            for block in containing
        )

    def test_both_paths_reach_the_join(self):
        report = lint_listing(MID_BLOCK_BRANCH)
        assert not report.diagnostics_for("unreachable-block")


class TestPredicatedBranchAtFunctionEnd:
    def test_lint_never_raises(self):
        report = lint_listing(PREDICATED_BRANCH_AT_END)
        assert report.kernel

    def test_last_block_has_no_phantom_fallthrough(self):
        function = _function(PREDICATED_BRANCH_AT_END)
        cfg = build_cfg(function.instructions)
        last_offset = function.instructions[-1].offset
        (last_block,) = [
            block
            for block in cfg.blocks
            if block.instructions[-1].offset == last_offset
        ]
        successors = set(cfg.successors.get(last_block.index, []))
        # The self-loop edge exists; no edge points past the function.
        assert last_block.index in successors
        assert all(0 <= index < len(cfg.blocks) for index in successors)


class TestDiagnosticStability:
    @pytest.mark.parametrize(
        "text", [UNKNOWN_IN_LOOP, MID_BLOCK_BRANCH, PREDICATED_BRANCH_AT_END]
    )
    def test_reports_are_deterministic_and_sorted(self, text):
        first = lint_listing(text)
        second = lint_listing(text)
        assert first.to_json() == second.to_json()
        keys = [diagnostic.sort_key for diagnostic in first.diagnostics]
        assert keys == sorted(keys)
