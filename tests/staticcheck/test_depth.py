"""Static dependency-depth / ILP estimates."""

from repro.arch.machine import VoltaV100
from repro.cfg.dominators import compute_dominator_tree
from repro.cfg.loops import find_loops
from repro.staticcheck.depth import _round_ilp, estimate_depths


def _analyze(cfg):
    loop_nest = find_loops(cfg, compute_dominator_tree(cfg))
    return estimate_depths(cfg, loop_nest, VoltaV100)


SERIAL = """
IADD R1, R2, R3
IADD R1, R1, R3
IADD R1, R1, R3
EXIT
"""

PARALLEL = """
IADD R1, R2, R3
IADD R4, R5, R6
IADD R7, R8, R9
EXIT
"""

LOOPED = """
MOV R1, 0x0
LOOP:
IADD R1, R1, R2
ISETP.LT.AND P0, R1, R3
@P0 BRA LOOP
EXIT
"""


def test_round_ilp():
    assert _round_ilp(10, 4) == 2.5
    assert _round_ilp(10, 3) == round(10 / 3, 4)
    assert _round_ilp(0, 0) == 0.0
    assert _round_ilp(5, 0) == 0.0


def test_serial_chain_vs_parallel_block(make_cfg):
    serial = _analyze(make_cfg(SERIAL)).block_depth(0)
    parallel = _analyze(make_cfg(PARALLEL)).block_depth(0)
    # Same instruction mix, so the serial cost matches...
    assert serial.total_latency == parallel.total_latency
    assert serial.instructions == parallel.instructions == 4
    # ...but the dependent chain runs three adds deep while the independent
    # one issues them side by side.
    assert serial.critical_path > parallel.critical_path
    assert parallel.ilp > serial.ilp
    assert serial.ilp == _round_ilp(serial.total_latency, serial.critical_path)


def test_serial_chain_depth_is_sum_of_add_latencies(make_cfg):
    depth = _analyze(make_cfg(SERIAL)).block_depth(0)
    add_latency = VoltaV100.latency("IADD")
    assert depth.critical_path == max(3 * add_latency, VoltaV100.latency("EXIT"))


def test_predicate_dependencies_serialize(make_cfg):
    cfg = make_cfg(
        """
        ISETP.LT.AND P0, R1, R2
        @P0 MOV R3, 0x1
        EXIT
        """
    )
    depth = _analyze(cfg).block_depth(0)
    # The predicated move cannot start before its guard predicate is ready.
    assert depth.critical_path >= VoltaV100.latency("ISETP") + VoltaV100.latency("MOV")


def test_loop_depth_entry(make_cfg):
    analysis = _analyze(make_cfg(LOOPED))
    assert len(analysis.loops) == 1
    loop = analysis.loops[0]
    assert loop.header_offset == 0x10
    assert loop.blocks == 1
    assert loop.instructions == 3
    assert loop.ilp == _round_ilp(loop.total_latency, loop.critical_path)


def test_function_aggregate_chains_blocks(make_cfg):
    analysis = _analyze(make_cfg(LOOPED))
    assert analysis.total_latency == sum(
        entry.total_latency for entry in analysis.blocks
    )
    assert analysis.critical_path == sum(
        entry.critical_path for entry in analysis.blocks
    )
    assert analysis.ilp == _round_ilp(analysis.total_latency, analysis.critical_path)
