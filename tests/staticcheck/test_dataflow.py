"""The generic worklist solver and post-dominators."""

import pytest

from repro.staticcheck.dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    compute_post_dominators,
    reachable_blocks,
    solve_dataflow,
)

DIAMOND = """
ISETP.LT.AND P0, R1, R2
@P0 BRA ELSE
MOV R3, 0x1
BRA JOIN
ELSE:
MOV R3, 0x2
JOIN:
STG.E.32 [R4], R3
EXIT
"""

TWO_EXITS = """
ISETP.LT.AND P0, R1, R2
@P0 BRA OTHER
EXIT
OTHER:
EXIT
"""

SELF_LOOP = """
LOOP:
BRA LOOP
"""

DEAD_TAIL = """
BRA END
MOV R0, 0x1
END:
EXIT
"""


class BlockTrace(DataflowProblem):
    """Forward union of visited block indices (a pure plumbing probe)."""

    direction = FORWARD

    def transfer(self, block, value):
        return value | {block.index}


class BackwardTrace(BlockTrace):
    direction = BACKWARD


class BadDirection(BlockTrace):
    direction = "sideways"


def test_unknown_direction_rejected(make_cfg):
    with pytest.raises(ValueError, match="sideways"):
        solve_dataflow(make_cfg(DIAMOND), BadDirection())


def test_forward_values_accumulate_along_paths(make_cfg):
    cfg = make_cfg(DIAMOND)
    solution = solve_dataflow(cfg, BlockTrace())
    # Entry block sees only itself; the join block's entry has seen both arms.
    assert solution.value_out(cfg.entry_index) == frozenset({cfg.entry_index})
    join = max(block.index for block in cfg.blocks)
    assert solution.value_in(join) == frozenset(
        index for index in range(join)
    ), "both diamond arms must reach the join"


def test_backward_values_flow_from_exits(make_cfg):
    cfg = make_cfg(DIAMOND)
    solution = solve_dataflow(cfg, BackwardTrace())
    # In the backward direction the entry's IN set still indexes the block's
    # *entry*: it has absorbed every block on some path to an exit.
    all_blocks = frozenset(block.index for block in cfg.blocks)
    assert solution.value_in(cfg.entry_index) | {cfg.entry_index} == all_blocks


def test_solver_is_deterministic(make_cfg):
    first = solve_dataflow(make_cfg(DIAMOND), BlockTrace())
    second = solve_dataflow(make_cfg(DIAMOND), BlockTrace())
    assert first.in_values == second.in_values
    assert first.out_values == second.out_values
    assert first.iterations == second.iterations
    assert first.iterations > 0


def test_self_loop_terminates(make_cfg):
    cfg = make_cfg(SELF_LOOP)
    solution = solve_dataflow(cfg, BlockTrace())
    assert solution.value_out(cfg.entry_index) == frozenset({cfg.entry_index})


def test_unreachable_block_keeps_participating(make_cfg):
    cfg = make_cfg(DEAD_TAIL)
    solution = solve_dataflow(cfg, BlockTrace())
    reachable = reachable_blocks(cfg)
    dead = [block.index for block in cfg.blocks if block.index not in reachable]
    assert dead, "DEAD_TAIL must contain an unreachable block"
    for index in dead:
        # No KeyError, and the dead block's value includes itself.
        assert index in solution.value_out(index)


def test_reachable_blocks(make_cfg):
    cfg = make_cfg(DEAD_TAIL)
    reachable = reachable_blocks(cfg)
    assert cfg.entry_index in reachable
    assert len(reachable) < len(cfg.blocks)


def test_post_dominators_diamond(make_cfg):
    cfg = make_cfg(DIAMOND)
    postdom = compute_post_dominators(cfg)
    join = max(block.index for block in cfg.blocks)
    # The join (which also holds EXIT here) post-dominates every block,
    # and the relation is reflexive.
    for block in cfg.blocks:
        assert join in postdom[block.index]
        assert block.index in postdom[block.index]
    # Neither arm post-dominates the entry.
    arms = [
        block.index
        for block in cfg.blocks
        if block.index not in (cfg.entry_index, join)
    ]
    for arm in arms:
        assert arm not in postdom[cfg.entry_index]


def test_post_dominators_two_exits(make_cfg):
    cfg = make_cfg(TWO_EXITS)
    postdom = compute_post_dominators(cfg)
    # With a virtual common exit, no single exit block post-dominates the
    # entry: only the entry itself does.
    assert postdom[cfg.entry_index] == frozenset({cfg.entry_index})


def test_post_dominators_infinite_loop_conservative(make_cfg):
    cfg = make_cfg(SELF_LOOP)
    postdom = compute_post_dominators(cfg)
    # A block that cannot reach any exit keeps the full set (reads as
    # "hazard-free" to rules, per the documented contract).
    all_blocks = frozenset(block.index for block in cfg.blocks)
    assert postdom[cfg.entry_index] == all_blocks
