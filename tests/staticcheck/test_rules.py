"""The typed lint rules, each driven by a hand-written kernel.

The registry cases are well-formed by construction, so the hazard rules
(divergent barrier, unreachable code, pathological strides) are exercised
here with synthetic programs that actually contain the defect — and with
near-identical uniform twins proving the rules stay quiet without it.
"""

from repro.cfg.graph import build_cfg
from repro.isa.parser import parse_program
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec
from repro.staticcheck.engine import StaticChecker
from repro.staticcheck.rules import find_divergent_branches

DIVERGENT_BARRIER = """
S2R R0, SR_TID.X
ISETP.LT.AND P0, R0, R2
@P0 BRA SKIP
BAR.SYNC
SKIP:
EXIT
"""

UNIFORM_BARRIER = """
MOV R0, 0x10
ISETP.LT.AND P0, R0, R2
@P0 BRA SKIP
BAR.SYNC
SKIP:
EXIT
"""

POSTDOMINATED_BARRIER = """
S2R R0, SR_TID.X
ISETP.LT.AND P0, R0, R2
@P0 BRA JOIN
MOV R1, 0x1
JOIN:
BAR.SYNC
EXIT
"""

LAUNDERED_TAINT = """
S2R R0, SR_TID.X
MOV R0, 0x0
ISETP.LT.AND P0, R0, R2
@P0 BRA SKIP
BAR.SYNC
SKIP:
EXIT
"""

TAINT_THROUGH_LOAD = """
S2R R0, SR_TID.X
LDG.E.32 R1, [R0]
ISETP.LT.AND P0, R1, R2
@P0 BRA SKIP
MOV R3, 0x1
SKIP:
EXIT
"""

UNREACHABLE = """
BRA END
MOV R0, 0x1
END:
EXIT
"""

GLOBAL_LOAD = """
LDG.E.32 R0, [R4]
EXIT
"""

SHARED_LOAD = """
LDS.32 R0, [R4]
EXIT
"""


def _rules_fired(report):
    return sorted({diagnostic.rule for diagnostic in report.diagnostics})


def test_divergent_branch_from_thread_index(make_cubin):
    report = StaticChecker().check(make_cubin(DIVERGENT_BARRIER))
    findings = report.diagnostics_for("divergent-branch")
    assert len(findings) == 1
    assert findings[0].offset == 0x20
    assert findings[0].severity == "info"
    assert findings[0].details["kind"] == "predicate"


def test_barrier_under_divergence_is_an_error(make_cubin):
    report = StaticChecker().check(make_cubin(DIVERGENT_BARRIER))
    findings = report.diagnostics_for("barrier-divergence")
    assert len(findings) == 1
    assert findings[0].offset == 0x30
    assert findings[0].severity == "error"
    assert findings[0].details["branch_offset"] == 0x20


def test_uniform_branch_is_quiet(make_cubin):
    report = StaticChecker().check(make_cubin(UNIFORM_BARRIER))
    assert report.diagnostics_for("divergent-branch") == []
    assert report.diagnostics_for("barrier-divergence") == []


def test_postdominated_barrier_is_safe(make_cubin):
    report = StaticChecker().check(make_cubin(POSTDOMINATED_BARRIER))
    # The branch still diverges, but every path reconverges at the barrier.
    assert len(report.diagnostics_for("divergent-branch")) == 1
    assert report.diagnostics_for("barrier-divergence") == []


def test_unconditional_uniform_write_launders_taint(make_cubin):
    report = StaticChecker().check(make_cubin(LAUNDERED_TAINT))
    assert report.diagnostics_for("divergent-branch") == []
    assert report.diagnostics_for("barrier-divergence") == []


def test_taint_flows_through_dependent_loads():
    cfg = build_cfg(parse_program(TAINT_THROUGH_LOAD))
    branches = find_divergent_branches(cfg)
    # tid -> address -> loaded value -> predicate -> branch.
    assert [(branch.offset, branch.kind) for branch in branches] == [
        (0x30, "predicate")
    ]


def test_unreachable_block_flagged(make_cubin):
    report = StaticChecker().check(make_cubin(UNREACHABLE))
    findings = report.diagnostics_for("unreachable-block")
    assert len(findings) == 1
    assert findings[0].severity == "warning"
    assert findings[0].details["block"] == 1
    assert report.function_lint("kern").unreachable_blocks == [1]


def test_dead_register_write_flagged(make_cubin):
    cubin = make_cubin(
        """
        MOV R1, 0x1
        MOV R1, 0x2
        STG.E.32 [R2], R1
        EXIT
        """
    )
    report = StaticChecker().check(cubin)
    findings = report.diagnostics_for("dead-register-write")
    assert len(findings) == 1
    assert findings[0].offset == 0x0
    assert findings[0].details == {"register": 1}


def test_uncoalesced_stride_needs_a_workload(make_cubin):
    report = StaticChecker().check(make_cubin(GLOBAL_LOAD))
    assert report.diagnostics_for("uncoalesced-stride") == []


def test_uncoalesced_stride_fires_on_wide_strides(make_cubin):
    workload = WorkloadSpec(default_access_stride_bytes=128)
    report = StaticChecker().check(make_cubin(GLOBAL_LOAD), workload=workload)
    findings = report.diagnostics_for("uncoalesced-stride")
    assert len(findings) == 1
    assert findings[0].details == {
        "stride_bytes": 128,
        "transactions_per_access": 32,
    }


def test_unit_stride_is_coalesced(make_cubin):
    workload = WorkloadSpec(default_access_stride_bytes=4)
    report = StaticChecker().check(make_cubin(GLOBAL_LOAD), workload=workload)
    assert report.diagnostics_for("uncoalesced-stride") == []


def test_bank_conflict_from_stride(make_cubin):
    workload = WorkloadSpec(default_access_stride_bytes=128)
    report = StaticChecker().check(make_cubin(SHARED_LOAD), workload=workload)
    findings = report.diagnostics_for("bank-conflict")
    assert len(findings) == 1
    # 128-byte stride lands every thread on bank 0: 32-way conflict.
    assert findings[0].details["conflict_ways"] == 32
    # The shared load is not a global access.
    assert report.diagnostics_for("uncoalesced-stride") == []


def test_bank_conflict_from_latency_scale(make_cubin):
    workload = WorkloadSpec(
        default_access_stride_bytes=4, shared_latency_scale=2.0
    )
    report = StaticChecker().check(make_cubin(SHARED_LOAD), workload=workload)
    findings = report.diagnostics_for("bank-conflict")
    assert len(findings) == 1
    assert findings[0].details["shared_latency_scale"] == 2.0
    assert "latency" in findings[0].message


def test_conflict_free_shared_access_is_quiet(make_cubin):
    workload = WorkloadSpec(default_access_stride_bytes=4)
    report = StaticChecker().check(make_cubin(SHARED_LOAD), workload=workload)
    assert report.diagnostics_for("bank-conflict") == []


def test_diagnostics_are_sorted_and_stable(make_cubin):
    report = StaticChecker().check(make_cubin(DIVERGENT_BARRIER))
    keys = [diagnostic.sort_key for diagnostic in report.diagnostics]
    assert keys == sorted(keys)
    again = StaticChecker().check(make_cubin(DIVERGENT_BARRIER))
    assert report.to_json() == again.to_json()


def test_occupancy_block_present_only_with_config(make_cubin):
    cubin = make_cubin(GLOBAL_LOAD)
    bare = StaticChecker().check(cubin)
    assert bare.function_lint("kern").occupancy is None
    config = LaunchConfig(grid_blocks=80, threads_per_block=256)
    launched = StaticChecker().check(cubin, config=config)
    occupancy = launched.function_lint("kern").occupancy
    assert occupancy is not None
    assert set(occupancy) == {"declared", "static_pressure"}
    assert 0.0 < occupancy["declared"]["occupancy"] <= 1.0


def test_rules_fired_summary(make_cubin):
    report = StaticChecker().check(make_cubin(DIVERGENT_BARRIER))
    assert _rules_fired(report) == ["barrier-divergence", "divergent-branch"]
    counts = report.counts_by_severity()
    assert counts["error"] == 1
    assert counts["info"] == 1
