"""Golden lint reports: every registry case pinned byte-for-byte.

The same files back CI's ``lint-smoke`` job, which regenerates the reports
with ``gpa-advise lint --all --output json --output-dir`` and diffs the
directory against this tree — so an engine change that shifts any byte of
any report must regenerate the goldens in the same commit.
"""

from pathlib import Path

import pytest

from repro.arch.machine import get_architecture
from repro.arch.occupancy import OccupancyCalculator
from repro.staticcheck.engine import lint_case
from repro.staticcheck.report import StaticReport
from repro.workloads.registry import all_cases

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

CASE_IDS = sorted(case.case_id for case in all_cases())


def _slug(case_id: str) -> str:
    return case_id.replace("/", "__").replace(":", "__")


def test_every_case_has_a_golden_and_vice_versa():
    expected = {f"{_slug(case_id)}.json" for case_id in CASE_IDS}
    actual = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert actual == expected


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_golden_report_is_byte_stable(case_id):
    report = lint_case(case_id)
    golden = (GOLDEN_DIR / f"{_slug(case_id)}.json").read_text()
    assert report.to_json() == golden
    # The golden file itself must be loadable by the strict loader.
    assert StaticReport.from_json(golden).case_id == case_id


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_static_occupancy_matches_arch_calculator(case_id):
    """The report's declared-occupancy block is exactly ``arch/occupancy``."""
    from repro.pipeline.batch import resolve_case

    case = resolve_case(case_id)
    setup = case.build_baseline()
    report = lint_case(case_id)

    architecture = get_architecture(setup.cubin.arch_flag)
    function = setup.cubin.functions[setup.kernel]
    expected = OccupancyCalculator(architecture).calculate(
        grid_blocks=setup.config.grid_blocks,
        threads_per_block=setup.config.threads_per_block,
        registers_per_thread=function.registers_per_thread,
        shared_memory_per_block=max(
            setup.config.shared_memory_bytes, function.shared_memory_bytes
        ),
    )
    declared = report.function_lint(setup.kernel).occupancy["declared"]
    assert declared["occupancy"] == expected.occupancy
    assert declared["limiter"] == expected.limiter
    assert declared["warps_per_sm"] == expected.warps_per_sm
    assert declared["blocks_per_sm"] == expected.blocks_per_sm
    assert declared["waves"] == expected.waves


def test_reports_are_deterministic_across_runs():
    case_id = CASE_IDS[0]
    assert lint_case(case_id).to_json() == lint_case(case_id).to_json()


def test_optimized_variant_lints_too():
    report = lint_case(CASE_IDS[0], variant="optimized")
    assert report.case_id == CASE_IDS[0]
    assert report.functions
