"""Wire forms: envelopes, strict loaders, byte-stable round-trips."""

import json

import pytest

from repro.api.schema import API_SCHEMA_VERSION, ApiSchemaError
from repro.staticcheck.engine import StaticChecker
from repro.staticcheck.report import (
    StaticDiagnostic,
    StaticReport,
    render_static_report,
)

KERNEL = """
S2R R0, SR_TID.X
ISETP.LT.AND P0, R0, R2
@P0 BRA SKIP
BAR.SYNC
SKIP:
EXIT
"""


@pytest.fixture
def report(make_cubin):
    return StaticChecker().check(make_cubin(KERNEL), case_id="synthetic/case")


def test_severity_is_validated():
    with pytest.raises(ValueError, match="severity"):
        StaticDiagnostic(
            rule="x", severity="fatal", function="k", offset=0, message="m"
        )


def test_diagnostic_round_trip():
    diagnostic = StaticDiagnostic(
        rule="dead-register-write",
        severity="info",
        function="kern",
        offset=0x20,
        line=14,
        message="R5 is written but never read afterwards",
        details={"register": 5},
    )
    payload = diagnostic.to_dict()
    assert payload["schema_version"] == API_SCHEMA_VERSION
    assert payload["kind"] == "static_diagnostic"
    twin = StaticDiagnostic.from_dict(payload)
    assert twin == diagnostic
    assert "line 14" in diagnostic.describe()


def test_report_envelope_and_round_trip(report):
    payload = report.to_dict()
    assert payload["schema_version"] == API_SCHEMA_VERSION
    assert payload["kind"] == "static_report"
    twin = StaticReport.from_dict(payload)
    assert twin == report
    # dump -> load -> dump is a byte-stable fixed point.
    assert StaticReport.from_json(report.to_json()).to_json() == report.to_json()


def test_json_is_canonical(report):
    text = report.to_json()
    assert text.endswith("\n")
    assert text == json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"


def test_loader_rejects_wrong_kind(report):
    diagnostic_payload = report.diagnostics[0].to_dict()
    with pytest.raises(ApiSchemaError, match="static_report"):
        StaticReport.from_dict(diagnostic_payload)


def test_loader_rejects_wrong_version(report):
    payload = report.to_dict()
    payload["schema_version"] = API_SCHEMA_VERSION - 1
    with pytest.raises(ApiSchemaError, match="schema version"):
        StaticReport.from_dict(payload)


def test_loader_rejects_missing_field(report):
    payload = report.to_dict()
    del payload["kernel"]
    with pytest.raises(ApiSchemaError, match="kernel"):
        StaticReport.from_dict(payload)


def test_loader_rejects_non_dict():
    with pytest.raises(ApiSchemaError, match="static_report"):
        StaticReport.from_dict(["not", "a", "dict"])


def test_counts_and_lookups(report):
    counts = report.counts_by_severity()
    assert counts["error"] == 1
    assert counts["info"] == 1
    assert counts["warning"] == 0
    assert len(report.diagnostics_for("barrier-divergence")) == 1
    assert report.function_lint("kern").is_kernel is True
    with pytest.raises(KeyError):
        report.function_lint("nope")


def test_case_id_carried(report):
    assert report.case_id == "synthetic/case"
    assert StaticReport.from_json(report.to_json()).case_id == "synthetic/case"


def test_render_text(report):
    text = render_static_report(report)
    assert "Static lint report for synthetic/case" in text
    assert "barrier-divergence" in text
    assert "kernel kern" in text
    assert "1 error" in text
