"""``AdvisingSession.lint``, the ``gpa-advise lint`` CLI, and cross-checks."""

from pathlib import Path

import pytest

from repro.advisor.cli import main
from repro.api.request import AdvisingRequest, request_for_case
from repro.api.schema import ApiValidationError
from repro.api.session import AdvisingSession
from repro.arch.machine import ArchitectureError
from repro.staticcheck.crosscheck import cross_check
from repro.staticcheck.engine import StaticChecker

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

CASE = "rodinia/hotspot:strength_reduction"


def _golden(case_id):
    slug = case_id.replace("/", "__").replace(":", "__")
    return (GOLDEN_DIR / f"{slug}.json").read_text()


@pytest.fixture(scope="module")
def session():
    return AdvisingSession()


@pytest.fixture(scope="module")
def advised(session):
    result = session.advise(request_for_case(CASE))
    assert result.ok, result.error
    return result


def test_session_lint_matches_engine(session):
    report = session.lint(request_for_case(CASE))
    assert report.to_json() == _golden(CASE)


def test_session_lint_rejects_profile_requests(session, advised):
    from repro.pipeline.batch import resolve_case

    setup = resolve_case(CASE).build_baseline()
    profile_request = AdvisingRequest(
        source="profile",
        profile=advised.report.profile,
        cubin=setup.cubin,
    )
    with pytest.raises(ApiValidationError, match="no binary to lint"):
        session.lint(profile_request)


def test_cross_check_corroborates_dynamic_advice(session, advised):
    static_report = session.lint(request_for_case(CASE))
    notes = cross_check(advised.report, static_report)
    agree = [note for note in notes if note.startswith("occupancy cross-check")]
    assert len(agree) == 1
    assert "agree" in agree[0]
    assert any(note.startswith("register pressure:") for note in notes)


def test_cross_check_never_mutates_the_dynamic_report(session, advised):
    before = advised.report.to_dict()
    static_report = session.lint(request_for_case(CASE))
    cross_check(advised.report, static_report)
    assert advised.report.to_dict() == before


def test_strict_architecture_raises(make_cubin):
    cubin = make_cubin("EXIT", arch_flag="sm_999")
    with pytest.raises(ArchitectureError, match="sm_999"):
        StaticChecker(strict_architecture=True).check(cubin)


def test_architecture_fallback_recorded_and_warned(make_cubin):
    cubin = make_cubin("EXIT", arch_flag="sm_999")
    with pytest.warns(UserWarning, match="sm_999"):
        report = StaticChecker().check(cubin)
    assert report.architecture_fallback == "sm_999"
    assert '"architecture_fallback": "sm_999"' in report.to_json()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lint_single_case_json(capsys):
    assert main(["lint", "--case", CASE, "--output", "json"]) == 0
    out = capsys.readouterr().out
    assert out == _golden(CASE)


def test_cli_lint_single_case_text(capsys):
    assert main(["lint", "--case", CASE]) == 0
    out = capsys.readouterr().out
    assert f"Static lint report for {CASE}" in out


def test_cli_lint_list(capsys):
    assert main(["lint", "--list"]) == 0
    out = capsys.readouterr().out
    assert CASE in out
    assert len(out.strip().splitlines()) == len(list(GOLDEN_DIR.glob("*.json")))


def test_cli_lint_all_to_directory(tmp_path, capsys):
    out_dir = tmp_path / "reports"
    assert (
        main(
            [
                "lint",
                "--all",
                "--output",
                "json",
                "--output-dir",
                str(out_dir),
            ]
        )
        == 0
    )
    capsys.readouterr()
    written = sorted(path.name for path in out_dir.glob("*.json"))
    golden = sorted(path.name for path in GOLDEN_DIR.glob("*.json"))
    assert written == golden
    for name in written:
        assert (out_dir / name).read_text() == (GOLDEN_DIR / name).read_text()


def test_cli_lint_unknown_case_fails(capsys):
    with pytest.raises(SystemExit):
        main(["lint", "--case", "no/such:case"])
    capsys.readouterr()


def test_cli_lint_case_and_all_are_exclusive(capsys):
    with pytest.raises(SystemExit):
        main(["lint", "--case", CASE, "--all"])
    capsys.readouterr()


def test_cli_lint_crosscheck(capsys):
    assert main(["lint", "--case", CASE, "--crosscheck"]) == 0
    out = capsys.readouterr().out
    assert "occupancy cross-check" in out
