"""Shared fixtures for the static-lint tests.

Most tests here build tiny synthetic kernels straight from assembly
listings (``parse_program``) — the registry cases are all well-formed, so
the interesting rule triggers (divergent barriers, unreachable blocks,
pathological strides) only exist in hand-written programs.
"""

import pytest

from repro.cfg.graph import build_cfg
from repro.cubin.binary import Cubin, Function, FunctionVisibility
from repro.isa.parser import parse_program


@pytest.fixture
def make_cfg():
    """Factory: assembly text -> ControlFlowGraph."""

    def _make(text):
        return build_cfg(parse_program(text))

    return _make


@pytest.fixture
def make_cubin():
    """Factory: assembly text -> single-kernel Cubin."""

    def _make(text, name="kern", arch_flag="sm_70", registers=32, shared=0):
        function = Function(
            name=name,
            visibility=FunctionVisibility.GLOBAL,
            instructions=parse_program(text),
            registers_per_thread=registers,
            shared_memory_bytes=shared,
        )
        return Cubin(arch_flag=arch_flag, functions={name: function})

    return _make
