"""Progress-event ordering invariants of the PipelineRunner."""

import pytest

from repro.pipeline.runner import PipelineRunner, PipelineStep, ProgressEvent


def run_plan(actions):
    events = []
    plan = [PipelineStep(name, action) for name, action in actions]
    outcomes = PipelineRunner(events.append).execute(plan)
    return events, outcomes


class TestProgressEventOrdering:
    def test_start_and_done_are_adjacent_per_step(self):
        events, _ = run_plan(
            [("a", lambda: 1), ("b", lambda: 2), ("c", lambda: 3)]
        )
        assert len(events) == 6
        for start, finish in zip(events[::2], events[1::2]):
            assert start.status == "start"
            assert finish.status == "done"
            assert start.step == finish.step
            assert start.index == finish.index

    def test_error_event_is_adjacent_to_its_start(self):
        events, _ = run_plan(
            [("ok", lambda: 1), ("boom", lambda: 1 / 0), ("after", lambda: 3)]
        )
        statuses = [(event.step, event.status) for event in events]
        assert statuses == [
            ("ok", "start"), ("ok", "done"),
            ("boom", "start"), ("boom", "error"),
            ("after", "start"), ("after", "done"),
        ]

    def test_indices_are_sequential_and_totals_constant(self):
        events, _ = run_plan([(str(i), lambda i=i: i) for i in range(5)])
        assert [event.index for event in events[::2]] == list(range(5))
        assert {event.total for event in events} == {5}
        for event in events:
            assert 0 <= event.index < event.total

    def test_start_events_carry_no_duration_or_error(self):
        events, _ = run_plan([("boom", lambda: 1 / 0)])
        start, error = events
        assert start.duration == 0.0 and start.error is None
        assert error.status == "error"
        assert error.duration >= 0.0
        assert "ZeroDivisionError" in error.error

    def test_done_durations_match_outcomes(self):
        events, outcomes = run_plan([("a", lambda: 1), ("b", lambda: 2)])
        finals = events[1::2]
        assert [event.duration for event in finals] == [
            outcome.duration for outcome in outcomes
        ]

    def test_empty_plan_emits_nothing(self):
        events, outcomes = run_plan([])
        assert events == [] and outcomes == []

    def test_event_is_frozen(self):
        event = ProgressEvent("x", 0, 1, "start")
        with pytest.raises(AttributeError):
            event.status = "done"
