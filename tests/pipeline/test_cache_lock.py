"""The cross-process cache lock guarding shared profile-cache directories."""

import threading

import pytest

import repro.pipeline.cache as cache_module
from repro.pipeline.cache import CacheLock, ProfileCache


class TestCacheLock:
    def test_reentrant_within_one_thread(self, tmp_path):
        lock = CacheLock(tmp_path)
        with lock:
            with lock:
                assert lock.held
            assert lock.held
        assert not lock.held

    def test_lock_file_lives_in_the_directory(self, tmp_path):
        lock = CacheLock(tmp_path)
        with lock:
            assert (tmp_path / ".cache.lock").exists()

    def test_excludes_another_handle_on_the_same_directory(self, tmp_path):
        """Two CacheLock instances (two daemons) on one directory are
        mutually exclusive: the second blocks until the first releases."""
        if cache_module.fcntl is None:
            pytest.skip("no fcntl on this platform")
        first = CacheLock(tmp_path)
        second = CacheLock(tmp_path)
        acquired = threading.Event()

        def contend():
            with second:
                acquired.set()

        with first:
            thread = threading.Thread(target=contend, daemon=True)
            thread.start()
            assert not acquired.wait(0.3), "flock did not exclude"
        assert acquired.wait(5.0), "lock never released"
        thread.join(5.0)

    def test_degrades_to_thread_lock_without_fcntl(self, tmp_path, monkeypatch):
        monkeypatch.setattr(cache_module, "fcntl", None)
        lock = CacheLock(tmp_path)
        with lock:
            assert lock.held
            assert lock._handle is None
        assert not lock.held

    def test_release_is_exception_safe(self, tmp_path):
        lock = CacheLock(tmp_path)
        with pytest.raises(RuntimeError):
            with lock:
                raise RuntimeError("boom")
        assert not lock.held
        with lock:  # still acquirable
            assert lock.held


class TestProfileCacheIntegration:
    def test_cache_owns_a_lock_on_its_directory(self, tmp_path):
        cache = ProfileCache(tmp_path)
        assert isinstance(cache.lock, CacheLock)
        assert cache.lock.path == tmp_path / ".cache.lock"

    def test_clear_ignores_the_lock_file(self, tmp_path):
        cache = ProfileCache(tmp_path)
        with cache.lock:
            pass  # materializes .cache.lock
        cache.clear()
        assert (tmp_path / ".cache.lock").exists() or not list(
            tmp_path.glob("*.profile.json")
        )
