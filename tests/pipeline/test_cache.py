"""Tests for the on-disk profile cache and the cached profiling stage."""

import pytest

from repro.arch.machine import TuringLike, VoltaV100
from repro.pipeline.cache import ProfileCache, profile_cache_key
from repro.pipeline.stages import ProfileRequest, ProfileStage
from repro.sampling.sample import LaunchConfig
from repro.sampling.simulator import SMSimulator
from repro.sampling.workload import WorkloadSpec


@pytest.fixture
def key_inputs(toy_cubin, toy_config, toy_workload):
    return dict(
        cubin=toy_cubin,
        kernel_name="toy_kernel",
        config=toy_config,
        workload=toy_workload,
        architecture=VoltaV100,
        sample_period=8,
    )


class TestCacheKey:
    def test_key_is_stable(self, key_inputs):
        assert profile_cache_key(**key_inputs) == profile_cache_key(**key_inputs)

    def test_sample_period_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        assert profile_cache_key(**{**key_inputs, "sample_period": 16}) != baseline

    def test_architecture_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        assert (
            profile_cache_key(**{**key_inputs, "architecture": TuringLike}) != baseline
        )

    def test_launch_config_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        bigger = key_inputs["config"].with_blocks(key_inputs["config"].grid_blocks * 2)
        assert profile_cache_key(**{**key_inputs, "config": bigger}) != baseline

    def test_workload_trip_counts_invalidate(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        changed = key_inputs["workload"].copy(loop_trip_counts={12: 24})
        assert profile_cache_key(**{**key_inputs, "workload": changed}) != baseline

    def test_callable_trip_counts_digest_by_behaviour(self, key_inputs):
        ramp = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: 4 + warp}
        )
        flat = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: 4}
        )
        ramp_key = profile_cache_key(**{**key_inputs, "workload": ramp})
        flat_key = profile_cache_key(**{**key_inputs, "workload": flat})
        assert ramp_key != flat_key
        # The same lambda source digests identically across evaluations.
        ramp_again = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: 4 + warp}
        )
        assert profile_cache_key(**{**key_inputs, "workload": ramp_again}) == ramp_key

    def test_callable_default_arguments_invalidate(self, key_inputs):
        """Behaviour bound via default args (the families.py idiom) must digest."""

        def make_trip(count):
            def trip(warp, total, _count=count):
                return _count

            return trip

        big = key_inputs["workload"].copy(loop_trip_counts={12: make_trip(400)})
        small = key_inputs["workload"].copy(loop_trip_counts={12: make_trip(4)})
        assert profile_cache_key(
            **{**key_inputs, "workload": big}
        ) != profile_cache_key(**{**key_inputs, "workload": small})

    def test_nested_code_objects_digest_deterministically(self, key_inputs):
        """No repr() fallback: nested lambdas must not digest by memory address."""
        first = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: (lambda: warp + 1)()}
        )
        second = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: (lambda: warp + 1)()}
        )
        assert profile_cache_key(
            **{**key_inputs, "workload": first}
        ) == profile_cache_key(**{**key_inputs, "workload": second})

    def test_lambdas_differing_only_in_globals_invalidate(self, key_inputs):
        """max and min compile to identical bytecode; co_names must digest."""
        from repro.pipeline.cache import _describe

        assert _describe(lambda n: max(n, 10)) != _describe(lambda n: min(n, 10))
        upper = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: max(warp, 10)}
        )
        lower = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: min(warp, 10)}
        )
        assert profile_cache_key(
            **{**key_inputs, "workload": upper}
        ) != profile_cache_key(**{**key_inputs, "workload": lower})

    def test_callable_instances_digest_by_state_not_address(self, key_inputs):
        class Trip:
            def __init__(self, count):
                self.count = count

            def __call__(self, warp, total):
                return self.count

        four = key_inputs["workload"].copy(loop_trip_counts={12: Trip(4)})
        eight = key_inputs["workload"].copy(loop_trip_counts={12: Trip(8)})
        four_again = key_inputs["workload"].copy(loop_trip_counts={12: Trip(4)})
        four_key = profile_cache_key(**{**key_inputs, "workload": four})
        assert four_key != profile_cache_key(**{**key_inputs, "workload": eight})
        # Distinct instances with equal state share a key: no memory address
        # leaks into the digest.
        assert four_key == profile_cache_key(**{**key_inputs, "workload": four_again})

    def test_callable_instance_helper_methods_invalidate(self, key_inputs):
        """__call__ delegating to a helper must digest the helper's code."""

        def make_trip(helper_body):
            class Trip:
                def __call__(self, warp, total):
                    return self._compute(warp)

                _compute = helper_body

            return Trip()

        flat = key_inputs["workload"].copy(
            loop_trip_counts={12: make_trip(lambda self, warp: 4)}
        )
        ramp = key_inputs["workload"].copy(
            loop_trip_counts={12: make_trip(lambda self, warp: warp * 2)}
        )
        assert profile_cache_key(
            **{**key_inputs, "workload": flat}
        ) != profile_cache_key(**{**key_inputs, "workload": ramp})

    def test_bound_methods_digest_receiver_state(self, key_inputs):
        class Trips:
            def __init__(self, count):
                self.count = count

            def trip(self, warp, total):
                return self.count

        four = key_inputs["workload"].copy(loop_trip_counts={12: Trips(4).trip})
        eight = key_inputs["workload"].copy(loop_trip_counts={12: Trips(8).trip})
        assert profile_cache_key(
            **{**key_inputs, "workload": four}
        ) != profile_cache_key(**{**key_inputs, "workload": eight})

    def test_simulation_scope_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        whole = profile_cache_key(**{**key_inputs, "simulation_scope": "whole_gpu"})
        assert whole != baseline
        assert profile_cache_key(
            **{**key_inputs, "simulation_scope": "single_wave"}
        ) == baseline

    def test_max_cycles_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        assert profile_cache_key(**{**key_inputs, "max_cycles": 10_000}) != baseline

    def test_self_referential_closures_digest_without_recursing(self, key_inputs):
        def make_recursive():
            def trip(warp, total):
                return 1 if warp <= 0 else trip(warp - 1, total)

            return trip

        cyclic = key_inputs["workload"].copy(loop_trip_counts={12: make_recursive()})
        cyclic_again = key_inputs["workload"].copy(
            loop_trip_counts={12: make_recursive()}
        )
        cyclic_key = profile_cache_key(**{**key_inputs, "workload": cyclic})
        assert cyclic_key == profile_cache_key(
            **{**key_inputs, "workload": cyclic_again}
        )

    def test_builtin_callables_have_addressless_descriptions(self):
        from repro.pipeline.cache import _describe

        assert _describe(max) == _describe(max)
        assert "0x" not in _describe(max)

    def test_bound_c_methods_digest_container_contents(self):
        """{0: 4}.get and {0: 8}.get must not share a description."""
        from repro.pipeline.cache import _describe

        assert _describe({0: 4}.get) != _describe({0: 8}.get)
        assert _describe({0: 4}.get) == _describe({0: 4}.get)

    def test_dicts_with_object_keys_digest_by_content_order(self):
        """Dict items must order by described key, not address-bearing repr."""
        from repro.pipeline.cache import _describe

        class Key:
            def __init__(self, tag):
                self.tag = tag

        forward = {Key("a"): 1, Key("b"): 2}
        backward = {Key("b"): 2, Key("a"): 1}
        assert _describe(forward) == _describe(backward)
        assert "0x" not in _describe(forward)

    def test_dataclass_receivers_digest_addresslessly(self):
        """__dataclass_fields__ reprs embed dataclasses.MISSING's address."""
        from dataclasses import dataclass

        from repro.pipeline.cache import _describe

        @dataclass
        class Cfg:
            count: int = 4

            def trips(self, warp, total):
                return self.count

        digest = _describe(Cfg(4).trips)
        assert "0x" not in digest
        assert digest == _describe(Cfg(4).trips)
        assert digest != _describe(Cfg(8).trips)

    def test_set_state_digests_independent_of_hash_seed(self):
        """Raw pickle bytes of a str set vary with PYTHONHASHSEED; the
        structural description must not."""
        import os
        import subprocess
        import sys

        script = (
            "from repro.pipeline.cache import _describe\n"
            "class Tagged:\n"
            "    def __init__(self):\n"
            "        self.tags = {'alpha', 'beta', 'gamma', 'delta'}\n"
            "    def trip(self, warp, total):\n"
            "        return len(self.tags)\n"
            "print(_describe(Tagged().trip))\n"
        )
        digests = set()
        for seed in ("1", "2"):
            run = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONHASHSEED": seed},
            )
            digests.add(run.stdout)
        assert len(digests) == 1
        assert "0x" not in digests.pop()

    def test_c_level_receiver_state_digests_via_pickle(self):
        """random.Random keeps its seed state in the C base, invisible to
        __dict__/slots — differently seeded receivers must not collide."""
        import random

        from repro.pipeline.cache import _describe

        assert _describe(random.Random(1).randint) != _describe(random.Random(2).randint)
        assert _describe(random.Random(1).randint) == _describe(random.Random(1).randint)

    def test_slot_backed_instances_digest_inherited_slots(self):
        from repro.pipeline.cache import _describe

        class Base:
            __slots__ = ("count",)

        class Trip(Base):
            __slots__ = ()

            def __call__(self, warp, total):
                return self.count

        four, eight = Trip(), Trip()
        four.count, eight.count = 4, 8
        assert _describe(four) != _describe(eight)

    def test_closed_over_plain_objects_digest_by_state_not_address(self):
        from repro.pipeline.cache import _describe

        class Params:
            def __init__(self, count):
                self.count = count

        def make_trip(params):
            return lambda warp, total: params.count

        four = _describe(make_trip(Params(4)))
        assert "0x" not in four
        assert four == _describe(make_trip(Params(4)))
        assert four != _describe(make_trip(Params(8)))

    def test_lru_cache_wrappers_digest_the_wrapped_code(self):
        import functools

        from repro.pipeline.cache import _describe

        flat = functools.lru_cache(maxsize=None)(lambda warp: 4)
        ramp = functools.lru_cache(maxsize=None)(lambda warp: warp * 2)
        assert _describe(flat) != _describe(ramp)

    def test_default_max_cycles_matches_the_stage_key(
        self, key_inputs, tmp_path, toy_cubin, toy_config, toy_workload
    ):
        """The public-API key with no max_cycles must find stage-written entries."""
        stage = ProfileStage(sample_period=8, cache=tmp_path)
        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        stage.run(request)
        assert profile_cache_key(**key_inputs) in stage.cache

    def test_partials_digest_by_arguments(self, key_inputs):
        import functools

        def trip(count, warp, total):
            return count

        four = key_inputs["workload"].copy(
            loop_trip_counts={12: functools.partial(trip, 4)}
        )
        eight = key_inputs["workload"].copy(
            loop_trip_counts={12: functools.partial(trip, 8)}
        )
        four_again = key_inputs["workload"].copy(
            loop_trip_counts={12: functools.partial(trip, 4)}
        )
        four_key = profile_cache_key(**{**key_inputs, "workload": four})
        assert four_key != profile_cache_key(**{**key_inputs, "workload": eight})
        assert four_key == profile_cache_key(**{**key_inputs, "workload": four_again})

    def test_binary_invalidates(self, key_inputs, toy_cubin):
        from dataclasses import replace

        baseline = profile_cache_key(**key_inputs)
        relabeled = replace(toy_cubin, module_name="other_module")
        assert profile_cache_key(**{**key_inputs, "cubin": relabeled}) != baseline


class TestProfileCache:
    def test_round_trip(self, tmp_path, toy_profiled):
        cache = ProfileCache(tmp_path)
        cache.put("k1", toy_profiled.profile)
        restored = cache.get("k1")
        assert restored is not None
        assert restored.to_json() == toy_profiled.profile.to_json()
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_and_clear(self, tmp_path, toy_profiled):
        cache = ProfileCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.misses == 1
        cache.put("k1", toy_profiled.profile)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert "k1" not in cache

    def test_torn_entry_is_a_miss(self, tmp_path, toy_profiled):
        cache = ProfileCache(tmp_path)
        cache.put("k1", toy_profiled.profile)
        cache.path_for("k1").write_text("{not json")
        assert cache.get("k1") is None

    def test_wrong_shape_json_is_a_miss(self, tmp_path, toy_profiled):
        """Valid JSON of the wrong shape must not crash the read path."""
        cache = ProfileCache(tmp_path)
        for corrupt in ("null", "[1,2,3]", '{"kernel": 7}', '"just a string"'):
            cache.put("k1", toy_profiled.profile)
            cache.path_for("k1").write_text(corrupt)
            assert cache.get("k1") is None


class TestProfileStageCaching:
    def test_warm_run_skips_the_simulator(
        self, tmp_path, toy_cubin, toy_config, toy_workload, monkeypatch
    ):
        stage = ProfileStage(sample_period=8, cache=tmp_path)
        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        cold = stage.run(request)
        assert cold.simulation is not None

        def explode(self, *args, **kwargs):
            raise AssertionError("simulator invoked on a warm cache")

        monkeypatch.setattr(SMSimulator, "simulate", explode)
        warm = stage.run(request)
        assert warm.simulation is None
        assert warm.profile.to_json() == cold.profile.to_json()
        assert warm.kernel_cycles == cold.kernel_cycles
        assert warm.occupancy == cold.occupancy
        assert stage.cache.hits == 1

    def test_changed_sample_period_misses(
        self, tmp_path, toy_cubin, toy_config, toy_workload
    ):
        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        ProfileStage(sample_period=8, cache=tmp_path).run(request)
        other = ProfileStage(sample_period=16, cache=tmp_path)
        other.run(request)
        assert other.cache.hits == 0
        assert other.cache.misses == 1

    def test_keep_samples_profiler_never_replays(
        self, tmp_path, toy_cubin, toy_config, toy_workload
    ):
        """keep_samples wants raw samples, which only the simulator has."""
        from repro.sampling.profiler import Profiler

        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        ProfileStage(sample_period=8, cache=tmp_path).run(request)
        keeper = ProfileStage(
            profiler=Profiler(sample_period=8, keep_samples=True), cache=tmp_path
        )
        kept = keeper.run(request)
        assert kept.simulation is not None
        assert kept.simulation.samples
        # Repeated sample-keeping runs must not rewrite the identical entry.
        keeper.run(request)
        assert keeper.cache.stores == 0

    def test_changed_max_cycles_misses(
        self, tmp_path, toy_cubin, toy_config, toy_workload
    ):
        """A truncated simulation must never be replayed as a full one."""
        from repro.sampling.profiler import Profiler

        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        ProfileStage(sample_period=8, cache=tmp_path).run(request)
        truncated = ProfileStage(
            profiler=Profiler(sample_period=8, max_cycles=10_000), cache=tmp_path
        )
        truncated.run(request)
        assert truncated.cache.hits == 0
        assert truncated.cache.misses == 1

    def test_changed_simulation_scope_misses(
        self, tmp_path, toy_cubin, toy_workload
    ):
        """A single-wave profile must never replay as a whole-GPU one."""
        import dataclasses

        from repro.arch.machine import VoltaV100 as V100
        from repro.sampling.profiler import Profiler

        tiny = dataclasses.replace(V100, num_sms=2)
        config = LaunchConfig(grid_blocks=6, threads_per_block=64)
        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=config, workload=toy_workload
        )
        single = ProfileStage(profiler=Profiler(tiny, sample_period=8), cache=tmp_path)
        single.run(request)
        whole = ProfileStage(
            profiler=Profiler(tiny, sample_period=8, simulation_scope="whole_gpu"),
            cache=tmp_path,
        )
        first = whole.run(request)
        assert whole.cache.hits == 0
        assert whole.cache.misses == 1
        assert first.profile.statistics.simulation_scope == "whole_gpu"
        # Both entries now coexist; each scope replays only its own.
        assert len(whole.cache) == 2
        replay = whole.run(request)
        assert replay.simulation is None
        assert replay.profile.statistics.simulation_scope == "whole_gpu"
        single_replay = single.run(request)
        assert single_replay.profile.statistics.simulation_scope == "single_wave"
