"""Tests for the on-disk profile cache and the cached profiling stage."""

import pytest

from repro.arch.machine import TuringLike, VoltaV100
from repro.pipeline.cache import ProfileCache, profile_cache_key
from repro.pipeline.stages import ProfileRequest, ProfileStage
from repro.sampling.sample import LaunchConfig
from repro.sampling.simulator import SMSimulator
from repro.sampling.workload import WorkloadSpec


@pytest.fixture
def key_inputs(toy_cubin, toy_config, toy_workload):
    return dict(
        cubin=toy_cubin,
        kernel_name="toy_kernel",
        config=toy_config,
        workload=toy_workload,
        architecture=VoltaV100,
        sample_period=8,
    )


class TestCacheKey:
    def test_key_is_stable(self, key_inputs):
        assert profile_cache_key(**key_inputs) == profile_cache_key(**key_inputs)

    def test_sample_period_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        assert profile_cache_key(**{**key_inputs, "sample_period": 16}) != baseline

    def test_architecture_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        assert (
            profile_cache_key(**{**key_inputs, "architecture": TuringLike}) != baseline
        )

    def test_launch_config_invalidates(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        bigger = key_inputs["config"].with_blocks(key_inputs["config"].grid_blocks * 2)
        assert profile_cache_key(**{**key_inputs, "config": bigger}) != baseline

    def test_workload_trip_counts_invalidate(self, key_inputs):
        baseline = profile_cache_key(**key_inputs)
        changed = key_inputs["workload"].copy(loop_trip_counts={12: 24})
        assert profile_cache_key(**{**key_inputs, "workload": changed}) != baseline

    def test_callable_trip_counts_digest_by_behaviour(self, key_inputs):
        ramp = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: 4 + warp}
        )
        flat = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: 4}
        )
        ramp_key = profile_cache_key(**{**key_inputs, "workload": ramp})
        flat_key = profile_cache_key(**{**key_inputs, "workload": flat})
        assert ramp_key != flat_key
        # The same lambda source digests identically across evaluations.
        ramp_again = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: 4 + warp}
        )
        assert profile_cache_key(**{**key_inputs, "workload": ramp_again}) == ramp_key

    def test_callable_default_arguments_invalidate(self, key_inputs):
        """Behaviour bound via default args (the families.py idiom) must digest."""

        def make_trip(count):
            def trip(warp, total, _count=count):
                return _count

            return trip

        big = key_inputs["workload"].copy(loop_trip_counts={12: make_trip(400)})
        small = key_inputs["workload"].copy(loop_trip_counts={12: make_trip(4)})
        assert profile_cache_key(
            **{**key_inputs, "workload": big}
        ) != profile_cache_key(**{**key_inputs, "workload": small})

    def test_nested_code_objects_digest_deterministically(self, key_inputs):
        """No repr() fallback: nested lambdas must not digest by memory address."""
        first = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: (lambda: warp + 1)()}
        )
        second = key_inputs["workload"].copy(
            loop_trip_counts={12: lambda warp, total: (lambda: warp + 1)()}
        )
        assert profile_cache_key(
            **{**key_inputs, "workload": first}
        ) == profile_cache_key(**{**key_inputs, "workload": second})

    def test_partials_digest_by_arguments(self, key_inputs):
        import functools

        def trip(count, warp, total):
            return count

        four = key_inputs["workload"].copy(
            loop_trip_counts={12: functools.partial(trip, 4)}
        )
        eight = key_inputs["workload"].copy(
            loop_trip_counts={12: functools.partial(trip, 8)}
        )
        four_again = key_inputs["workload"].copy(
            loop_trip_counts={12: functools.partial(trip, 4)}
        )
        four_key = profile_cache_key(**{**key_inputs, "workload": four})
        assert four_key != profile_cache_key(**{**key_inputs, "workload": eight})
        assert four_key == profile_cache_key(**{**key_inputs, "workload": four_again})

    def test_binary_invalidates(self, key_inputs, toy_cubin):
        from dataclasses import replace

        baseline = profile_cache_key(**key_inputs)
        relabeled = replace(toy_cubin, module_name="other_module")
        assert profile_cache_key(**{**key_inputs, "cubin": relabeled}) != baseline


class TestProfileCache:
    def test_round_trip(self, tmp_path, toy_profiled):
        cache = ProfileCache(tmp_path)
        cache.put("k1", toy_profiled.profile)
        restored = cache.get("k1")
        assert restored is not None
        assert restored.to_json() == toy_profiled.profile.to_json()
        assert cache.hits == 1 and cache.stores == 1

    def test_miss_and_clear(self, tmp_path, toy_profiled):
        cache = ProfileCache(tmp_path)
        assert cache.get("absent") is None
        assert cache.misses == 1
        cache.put("k1", toy_profiled.profile)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert "k1" not in cache

    def test_torn_entry_is_a_miss(self, tmp_path, toy_profiled):
        cache = ProfileCache(tmp_path)
        cache.put("k1", toy_profiled.profile)
        cache.path_for("k1").write_text("{not json")
        assert cache.get("k1") is None


class TestProfileStageCaching:
    def test_warm_run_skips_the_simulator(
        self, tmp_path, toy_cubin, toy_config, toy_workload, monkeypatch
    ):
        stage = ProfileStage(sample_period=8, cache=tmp_path)
        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        cold = stage.run(request)
        assert cold.simulation is not None

        def explode(self, *args, **kwargs):
            raise AssertionError("simulator invoked on a warm cache")

        monkeypatch.setattr(SMSimulator, "simulate", explode)
        warm = stage.run(request)
        assert warm.simulation is None
        assert warm.profile.to_json() == cold.profile.to_json()
        assert warm.kernel_cycles == cold.kernel_cycles
        assert warm.occupancy == cold.occupancy
        assert stage.cache.hits == 1

    def test_changed_sample_period_misses(
        self, tmp_path, toy_cubin, toy_config, toy_workload
    ):
        request = ProfileRequest(
            cubin=toy_cubin, kernel="toy_kernel", config=toy_config, workload=toy_workload
        )
        ProfileStage(sample_period=8, cache=tmp_path).run(request)
        other = ProfileStage(sample_period=16, cache=tmp_path)
        other.run(request)
        assert other.cache.hits == 0
        assert other.cache.misses == 1
