"""Tests for the batch driver, the runner and the refactored harnesses."""

import pytest

from repro.pipeline.batch import (
    BatchAdvisor,
    BatchConfig,
    advise_case,
    table3_case_worker,
)
from repro.pipeline.runner import PipelineRunner, PipelineStep
from repro.evaluation.table3 import evaluate_table3
from repro.sampling.simulator import SMSimulator
from repro.workloads.registry import case_by_name

SUBSET = ["rodinia/backprop:warp_balance", "rodinia/gaussian:thread_increase"]


class TestLazyRegistryImport:
    def test_import_repro_does_not_load_the_workload_registry(self):
        """`import repro` (and every spawned pool worker) must not pay for
        constructing the whole benchmark registry."""
        import subprocess
        import sys

        loaded = subprocess.run(
            [
                sys.executable,
                "-c",
                "import sys, repro; "
                "print(sum(m.startswith('repro.workloads') for m in sys.modules))",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        assert loaded.stdout.strip() == "0"


class TestRunner:
    def test_execute_captures_per_step_failures(self):
        events = []
        plan = [
            PipelineStep("ok", lambda: 42),
            PipelineStep("boom", lambda: 1 / 0),
            PipelineStep("after", lambda: "still runs"),
        ]
        outcomes = PipelineRunner(events.append).execute(plan)
        assert [outcome.ok for outcome in outcomes] == [True, False, True]
        assert outcomes[0].value == 42
        assert "ZeroDivisionError" in outcomes[1].error
        assert outcomes[2].value == "still runs"
        statuses = [(event.step, event.status) for event in events]
        assert ("boom", "error") in statuses
        assert ("after", "done") in statuses


class TestBatchAdvisor:
    def test_sequential_sweep_preserves_order(self):
        advisor = BatchAdvisor(BatchConfig(jobs=1))
        results = advisor.advise(SUBSET)
        assert [result.case_id for result in results] == SUBSET
        assert all(result.ok for result in results)
        for result in results:
            assert result.value["report"]["advice"]

    def test_bad_case_is_captured_not_raised(self):
        advisor = BatchAdvisor(BatchConfig(jobs=1))
        results = advisor.advise(["rodinia/backprop:warp_balance", "no/such:case"])
        assert results[0].ok
        assert not results[1].ok
        assert "KeyError" in results[1].error

    def test_parallel_sweep_matches_sequential(self):
        sequential = BatchAdvisor(BatchConfig(jobs=1)).advise(SUBSET)
        parallel = BatchAdvisor(BatchConfig(jobs=2)).advise(SUBSET)
        assert [result.case_id for result in parallel] == SUBSET
        for seq, par in zip(sequential, parallel):
            assert seq.value == par.value

    def test_parallel_error_capture(self):
        results = BatchAdvisor(BatchConfig(jobs=2)).advise(
            ["no/such:case", "rodinia/backprop:warp_balance"]
        )
        assert not results[0].ok and "KeyError" in results[0].error
        assert results[1].ok

    def test_pool_progress_pairs_start_with_completion(self):
        """Pool mode must not report every case as started at submission."""
        events = []
        BatchAdvisor(BatchConfig(jobs=2)).advise(SUBSET, progress=events.append)
        assert len(events) == 2 * len(SUBSET)
        for start, finish in zip(events[::2], events[1::2]):
            assert start.status == "start"
            assert finish.status in ("done", "error")
            assert start.step == finish.step

    def test_unregistered_case_falls_back_inline(self):
        import dataclasses

        case = case_by_name(SUBSET[0])
        clone = dataclasses.replace(case, name="custom/clone")
        advisor = BatchAdvisor(BatchConfig(jobs=4))
        results = advisor.run_cases(table3_case_worker, [clone])
        assert results[0].ok
        assert results[0].case_id == "custom/clone:warp_balance"


class TestTable3Pipeline:
    def test_sequential_and_parallel_rows_are_identical(self):
        cases = [case_by_name(name) for name in SUBSET]
        sequential = evaluate_table3(cases, jobs=1)
        parallel = evaluate_table3(cases, jobs=2)
        assert not sequential.failures and not parallel.failures
        for seq, par in zip(sequential.rows, parallel.rows):
            assert seq.baseline_cycles == par.baseline_cycles
            assert seq.optimized_cycles == par.optimized_cycles
            assert seq.achieved_speedup == par.achieved_speedup
            assert seq.estimated_speedup == par.estimated_speedup
            assert seq.error == par.error
            assert seq.optimizer_rank == par.optimizer_rank
            assert seq.total_samples == par.total_samples

    def test_warm_cache_run_is_bit_identical_without_simulation(
        self, tmp_path, monkeypatch
    ):
        cases = [case_by_name(name) for name in SUBSET]
        uncached = evaluate_table3(cases)
        cold = evaluate_table3(cases, cache_dir=tmp_path)

        def explode(self, *args, **kwargs):
            raise AssertionError("simulator invoked on a warm cache")

        monkeypatch.setattr(SMSimulator, "simulate", explode)
        warm = evaluate_table3(cases, cache_dir=tmp_path)
        assert not warm.failures
        for reference in (uncached, cold):
            for ref, row in zip(reference.rows, warm.rows):
                assert ref.baseline_cycles == row.baseline_cycles
                assert ref.optimized_cycles == row.optimized_cycles
                assert ref.achieved_speedup == row.achieved_speedup
                assert ref.estimated_speedup == row.estimated_speedup
                assert ref.total_samples == row.total_samples

    def test_format_table3_surfaces_failures(self):
        from repro.evaluation.table3 import Table3Result, format_table3

        result = Table3Result(failures=[("no/such:case", "KeyError: 'no/such:case'")])
        rendered = format_table3(result)
        assert "1 case(s) FAILED" in rendered
        assert "no/such:case: KeyError" in rendered

    def test_format_table3_tolerates_blank_error_text(self):
        from repro.evaluation.table3 import Table3Result, format_table3

        rendered = format_table3(Table3Result(failures=[("x/y:z", " \n")]))
        assert "x/y:z: unknown error" in rendered

    def test_failure_lands_in_failures_not_exception(self, monkeypatch):
        case = case_by_name(SUBSET[0])
        broken = type(case)(
            name=case.name,
            kernel=case.kernel,
            optimization=case.optimization,
            optimizer_name=case.optimizer_name,
            baseline=lambda: (_ for _ in ()).throw(RuntimeError("broken setup")),
            optimized=case.optimized,
        )
        result = evaluate_table3([broken, case_by_name(SUBSET[1])])
        assert len(result.rows) == 1
        assert len(result.failures) == 1
        assert "broken setup" in result.failures[0][1]


class TestMultiArchSweep:
    def test_turing_diverges_from_volta(self):
        config_volta = BatchConfig(arch_flag="sm_70")
        config_turing = BatchConfig(arch_flag="sm_75")
        payload = ("rodinia/gaussian:thread_increase", False)
        volta = advise_case(config_volta, payload)
        turing = advise_case(config_turing, payload)
        assert volta["report"]["statistics"] != turing["report"]["statistics"]

    def test_ampere_sweep_completes(self):
        results = BatchAdvisor(BatchConfig(arch_flag="sm_80")).advise(SUBSET)
        assert all(result.ok for result in results)
