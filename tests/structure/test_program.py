"""Tests for program-structure recovery."""

import json

from repro.structure.program import build_program_structure


def test_structure_contains_all_functions(toy_cubin):
    structure = build_program_structure(toy_cubin)
    assert set(structure.functions) == set(toy_cubin.functions)
    assert [f.name for f in structure.kernels()] == ["toy_kernel"]


def test_loop_recovered_with_header_line(toy_cubin):
    structure = build_program_structure(toy_cubin)
    function = structure.function("toy_kernel")
    loops = function.loops()
    assert len(loops) == 1
    assert loops[0].header_line == 12


def test_location_includes_line_and_loop(toy_cubin, toy_profiled):
    structure = toy_profiled.structure
    function = structure.function("toy_kernel")
    load_offset = function.offsets_for_line(13)[0]
    location = function.location(load_offset)
    assert location.line == 13
    assert location.loop_line == 12
    assert "Line 13" in location.describe()
    assert "Loop at Line 12" in location.describe()


def test_offsets_for_line_and_lines(toy_cubin):
    function = build_program_structure(toy_cubin).function("toy_kernel")
    assert function.offsets_for_line(13)
    assert function.lines() == sorted(function.lines())
    assert 17 in function.lines()


def test_structure_serialization_is_json(toy_cubin):
    structure = build_program_structure(toy_cubin)
    payload = json.loads(structure.to_json())
    assert payload["arch_flag"] == "sm_70"
    kernel = payload["functions"]["toy_kernel"]
    assert kernel["visibility"] == "global"
    assert kernel["loops"][0]["header_line"] == 12
    assert kernel["instruction_count"] == len(toy_cubin.function("toy_kernel").instructions)
