"""CLI tests for the service-layer surface: --output formats and validation."""

import json

import pytest

from repro.advisor.cli import main as cli_main

CASE = "rodinia/gaussian:thread_increase"


class TestOutputFormats:
    def test_output_json_emits_a_versioned_report(self, capsys):
        assert cli_main(["--case", CASE, "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "advice_report"
        assert payload["kernel"] == "Fan2"
        assert payload["profile"]["instructions"]
        assert payload["blame"]["edges"]

    def test_output_jsonl_single_case_emits_a_result_line(self, capsys):
        assert cli_main(["--case", CASE, "--output", "jsonl"]) == 0
        from repro.api.result import AdvisingResult

        result = AdvisingResult.from_json(capsys.readouterr().out)
        assert result.ok
        assert result.report.kernel == "Fan2"
        assert result.request.case_id == CASE

    def test_output_jsonl_sweep_streams_one_line_per_case(self, capsys):
        assert cli_main(["--all", "--limit", "3", "--output", "jsonl"]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(lines) == 3
        assert all(line["kind"] == "advising_result" for line in lines)
        assert sorted(line["index"] for line in lines) == [0, 1, 2]

    def test_json_flag_is_an_alias_for_output_json(self, capsys):
        assert cli_main(["--case", CASE, "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["kernel"] == "Fan2"

    def test_json_flag_conflicts_with_other_output(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", CASE, "--json", "--output", "text"])
        assert excinfo.value.code == 2

    def test_sweep_json_round_trips_through_result_objects(self, capsys):
        assert cli_main(["--all", "--limit", "2", "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 2
        for entry in payload:
            assert entry["ok"]
            assert entry["report"]["kind"] == "advice_report"


class TestSimulationScope:
    def test_unknown_scope_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", CASE, "--scope", "per_warp"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_scope_reaches_the_result(self, capsys):
        # A grid-limited case keeps the whole-GPU run cheap: its single
        # under-full wave simulates fewer blocks than one full wave would.
        assert cli_main([
            "--case", "rodinia/particlefilter:block_increase",
            "--scope", "whole_gpu", "--output", "jsonl", "--sample-period", "32",
        ]) == 0
        from repro.api.result import AdvisingResult

        result = AdvisingResult.from_json(capsys.readouterr().out)
        assert result.ok
        assert result.simulation_scope == "whole_gpu"
        assert result.report.profile.statistics.simulation_scope == "whole_gpu"


class TestValidation:
    @pytest.mark.parametrize("top", ["0", "-3"])
    def test_nonpositive_top_is_rejected(self, top, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", CASE, "--top", top])
        assert excinfo.value.code == 2
        assert "--top must be positive" in capsys.readouterr().err

    @pytest.mark.parametrize("period", ["0", "-8"])
    def test_nonpositive_sample_period_is_rejected(self, period, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", CASE, "--sample-period", period])
        assert excinfo.value.code == 2
        assert "--sample-period must be positive" in capsys.readouterr().err

    def test_zero_jobs_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--all", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "--jobs must be at least 1" in capsys.readouterr().err

    def test_unknown_case_fails_with_a_clean_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", "no/such:case"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown benchmark case 'no/such:case'" in err
        assert "KeyError" not in err
