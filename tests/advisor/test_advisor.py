"""Tests for the GPA facade, the report format and the CLI."""

import json

import pytest

from repro.advisor.advisor import GPA
from repro.advisor.cli import main as cli_main
from repro.advisor.report import render_report
from repro.advisor.static_analyzer import StaticAnalyzer
from repro.sampling.profiler import Profiler


class TestStaticAnalyzer:
    def test_analysis_contains_structure_arch_and_disassembly(self, toy_cubin):
        analysis = StaticAnalyzer().analyze(toy_cubin)
        assert analysis.architecture.arch_flag == "sm_70"
        assert "toy_kernel" in analysis.structure.functions
        assert "LDG" in analysis.listing("toy_kernel")

    def test_unknown_arch_flag_falls_back_to_default(self, toy_cubin):
        toy_cubin_copy = type(toy_cubin)(arch_flag="sm_123", functions=dict(toy_cubin.functions))
        analysis = StaticAnalyzer().analyze(toy_cubin_copy)
        assert analysis.architecture.arch_flag == "sm_70"


class TestAdviceReport:
    def test_advice_is_sorted_by_estimated_speedup(self, toy_report):
        applicable = [item for item in toy_report.advice if item.applicable]
        speedups = [item.estimated_speedup for item in applicable]
        assert speedups == sorted(speedups, reverse=True)

    def test_report_covers_all_registered_optimizers(self, toy_report):
        # Table 2's eleven plus the Memory Coalescing optimizer.
        assert len(toy_report.advice) == 12

    def test_render_includes_figure8_elements(self, toy_report):
        text = render_report(toy_report)
        assert "GPA advice report" in text
        assert "estimate speedup" in text
        assert "ratio" in text
        assert "toy_kernel" in text

    def test_top_limits_the_number_of_suggestions(self, toy_report):
        assert len(toy_report.top(2)) == 2

    def test_to_dict_is_json_serializable(self, toy_report):
        payload = json.loads(json.dumps(toy_report.to_dict()))
        assert payload["kernel"] == "toy_kernel"
        assert len(payload["advice"]) == 12
        assert payload["totals"]["total_samples"] > 0


class TestGPAFacade:
    def test_advise_equals_profile_plus_analyze(self, toy_cubin, toy_config, toy_workload):
        gpa = GPA(sample_period=8)
        report = gpa.advise(toy_cubin, "toy_kernel", toy_config, toy_workload)
        assert report.kernel == "toy_kernel"
        assert report.advice

    def test_analyze_offline_profile(self, toy_cubin, toy_config, toy_workload, tmp_path):
        """The offline workflow: dump the profile + binary, reload, analyze."""
        from repro.cubin.binary import Cubin
        from repro.structure.program import build_program_structure

        profiler = Profiler(sample_period=8)
        profiled = profiler.profile(toy_cubin, "toy_kernel", toy_config, toy_workload)
        profile_path = Profiler.dump(profiled, tmp_path)
        restored_profile = Profiler.load_profile(profile_path)
        restored_cubin = Cubin.from_json((tmp_path / "toy_module.json").read_text())
        report = GPA().analyze(restored_profile, build_program_structure(restored_cubin))
        assert report.advice
        assert report.profile.total_samples == profiled.profile.total_samples


class TestCli:
    def test_list_cases(self, capsys):
        assert cli_main(["--list"]) == 0
        output = capsys.readouterr().out
        assert "rodinia/hotspot" in output
        assert "GPUStrengthReductionOptimizer" in output

    def test_case_report_text(self, capsys):
        assert cli_main(["--case", "rodinia/gaussian:thread_increase", "--top", "3"]) == 0
        output = capsys.readouterr().out
        assert "GPA advice report for kernel Fan2" in output

    def test_case_report_json(self, capsys):
        assert cli_main(["--case", "rodinia/gaussian:thread_increase", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "Fan2"

    def test_no_arguments_shows_help(self, capsys):
        assert cli_main([]) == 2

    def test_arch_flag_threads_through_to_the_report(self, capsys):
        case = "rodinia/gaussian:thread_increase"
        assert cli_main(["--case", case, "--json", "--arch", "sm_70"]) == 0
        volta = json.loads(capsys.readouterr().out)
        assert cli_main(["--case", case, "--json", "--arch", "sm_75"]) == 0
        turing = json.loads(capsys.readouterr().out)
        # Turing's halved warp slots change the launch statistics.
        assert volta["statistics"] != turing["statistics"]

    def test_unknown_arch_flag_is_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["--case", "rodinia/hotspot:strength_reduction", "--arch", "sm_1"])

    def test_offline_profile_cubin_json_round_trip(
        self, toy_cubin, toy_config, toy_workload, tmp_path, capsys
    ):
        """Dump through the profiler, reload through the CLI, compare totals."""
        profiler = Profiler(sample_period=8)
        profiled = profiler.profile(toy_cubin, "toy_kernel", toy_config, toy_workload)
        profile_path = Profiler.dump(profiled, tmp_path)
        cubin_path = tmp_path / "toy_module.json"
        assert (
            cli_main(
                ["--profile", str(profile_path), "--cubin", str(cubin_path), "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kernel"] == "toy_kernel"
        assert payload["totals"]["total_samples"] == profiled.profile.total_samples
        assert payload["advice"]

    def test_case_and_all_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--all", "--case", "rodinia/hotspot:strength_reduction"])
        assert excinfo.value.code == 2
        assert "--case cannot be combined with --all" in capsys.readouterr().err

    def test_profile_and_all_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--all", "--profile", "p.json", "--cubin", "c.json"])
        assert excinfo.value.code == 2
        assert "--profile/--cubin cannot be combined with --all" in capsys.readouterr().err

    def test_limit_without_all_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", "rodinia/hotspot:strength_reduction", "--limit", "2"])
        assert excinfo.value.code == 2
        assert "--limit only applies to --all" in capsys.readouterr().err

    def test_case_and_cubin_are_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--case", "rodinia/hotspot:strength_reduction", "--cubin", "c.json"])
        assert excinfo.value.code == 2
        assert "--case cannot be combined with --profile/--cubin" in capsys.readouterr().err

    def test_negative_limit_is_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["--all", "--limit", "-2"])
        assert excinfo.value.code == 2
        assert "--limit must be non-negative" in capsys.readouterr().err

    def test_all_sweeps_through_batch_advisor(self, capsys):
        assert cli_main(["--all", "--limit", "2", "--jobs", "2"]) == 0
        captured = capsys.readouterr()
        body = captured.out.strip().splitlines()
        # Header, rule, two case rows, blank line, summary.
        assert "2/2 cases ok" in body[-1]
        # The progress counter counts completions, so it is monotonic even
        # when pool workers finish out of submission order.
        counters = [
            int(line.split("/")[0].lstrip("["))
            for line in captured.err.splitlines()
            if line.startswith("[")
        ]
        assert counters == [1, 2]

    def test_all_json_with_cache(self, tmp_path, capsys):
        args = ["--all", "--limit", "2", "--cache-dir", str(tmp_path), "--json"]
        assert cli_main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cli_main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert [entry["report"] for entry in cold] == [
            entry["report"] for entry in warm
        ]
        assert all(entry["ok"] for entry in warm)
