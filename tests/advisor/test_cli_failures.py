"""CLI failure modes must exit non-zero with a clear message, not a traceback."""

import pytest

from repro.advisor.cli import main as cli_main

CASE = "rodinia/gaussian:thread_increase"


def _expect_usage_error(argv, capsys, fragment):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(argv)
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert fragment in err
    assert "Traceback" not in err
    return err


class TestUnknownCase:
    def test_unknown_case_label(self, capsys):
        err = _expect_usage_error(
            ["--case", "rodinia/nonexistent:nothing"], capsys,
            "unknown benchmark case 'rodinia/nonexistent:nothing'",
        )
        assert "--list" in err

    def test_unknown_case_fails_before_any_simulation(self, capsys):
        # Even with heavyweight knobs set, the bad label dies immediately.
        _expect_usage_error(
            ["--case", "typo", "--scope", "whole_gpu", "--jobs", "4"], capsys,
            "unknown benchmark case 'typo'",
        )


class TestInvalidChoices:
    def test_invalid_scope(self, capsys):
        _expect_usage_error(
            ["--case", CASE, "--scope", "half_gpu"], capsys,
            "invalid choice: 'half_gpu'",
        )

    def test_invalid_memory_model(self, capsys):
        _expect_usage_error(
            ["--case", CASE, "--memory-model", "banked"], capsys,
            "invalid choice: 'banked'",
        )

    def test_invalid_arch(self, capsys):
        _expect_usage_error(
            ["--case", CASE, "--arch", "sm_999"], capsys,
            "invalid choice: 'sm_999'",
        )


class TestConflictingSources:
    def test_case_conflicts_with_all(self, capsys):
        _expect_usage_error(
            ["--case", CASE, "--all"], capsys,
            "--case cannot be combined with --all",
        )

    def test_case_conflicts_with_profile(self, capsys):
        _expect_usage_error(
            ["--case", CASE, "--profile", "p.json", "--cubin", "c.json"], capsys,
            "--case cannot be combined with --profile/--cubin",
        )

    def test_all_conflicts_with_profile(self, capsys):
        _expect_usage_error(
            ["--all", "--profile", "p.json", "--cubin", "c.json"], capsys,
            "--profile/--cubin cannot be combined with --all",
        )

    def test_profile_requires_cubin(self, capsys):
        _expect_usage_error(
            ["--profile", "p.json"], capsys,
            "--profile requires --cubin",
        )
