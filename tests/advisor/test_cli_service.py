"""The ``gpa-advise serve`` / ``gpa-advise submit`` subcommands.

The serve loop runs in a thread with an injected stop event (the signal
handlers it would install in a real process can only live on the main
thread), talking over a real localhost socket to the submit side — the same
wiring the CI ``service-smoke`` job exercises from the shell.
"""

import threading
import time

import pytest

from repro.advisor import cli


@pytest.fixture
def serve(tmp_path):
    """A running `gpa-advise serve --port 0` on its own thread."""
    ready_file = tmp_path / "ready.txt"
    stop = threading.Event()
    exit_codes = []

    def run():
        exit_codes.append(
            cli._serve_main(
                [
                    "--port", "0", "--inline", "--workers", "2",
                    "--queue-size", "16",
                    "--cache-dir", str(tmp_path / "cache"),
                    "--ready-file", str(ready_file),
                ],
                stop=stop,
            )
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30.0
    while not (ready_file.exists() and ready_file.read_text().strip()):
        assert time.monotonic() < deadline, "daemon never became ready"
        assert thread.is_alive(), "serve exited before becoming ready"
        time.sleep(0.05)
    host, port, pid = ready_file.read_text().split()
    yield f"http://{host}:{port}", stop, thread, exit_codes
    stop.set()
    thread.join(30.0)


class TestServeSubmit:
    def test_submit_output_is_byte_identical_to_inline(self, serve, capsys):
        url, _, _, _ = serve
        case = "rodinia/hotspot:strength_reduction"
        assert cli.main(["--case", case, "--output", "json"]) == 0
        inline_output = capsys.readouterr().out
        assert cli.main(
            ["submit", "--url", url, "--case", case, "--output", "json"]
        ) == 0
        service_output = capsys.readouterr().out
        assert service_output == inline_output

    def test_submit_healthz_and_stats(self, serve, capsys):
        url, _, _, _ = serve
        assert cli.main(["submit", "--url", url, "--healthz"]) == 0
        health = capsys.readouterr().out
        assert '"status": "ok"' in health
        assert cli.main(["submit", "--url", url, "--stats"]) == 0
        stats = capsys.readouterr().out
        assert '"queue_capacity": 16' in stats

    def test_submit_batch_jsonl(self, serve, capsys):
        import json

        url, _, _, _ = serve
        assert cli.main(
            ["submit", "--url", url, "--all", "--limit", "2",
             "--output", "jsonl"]
        ) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 2
        assert [line["index"] for line in lines] == [0, 1]
        assert all(line["kind"] == "advising_result" for line in lines)

    def test_submit_all_limit_zero_renders_empty_sweep(self, serve, capsys):
        # Mirrors the inline CLI: an empty selection exits 0 with an empty
        # table instead of posting a batch the daemon would 400.
        url, _, _, _ = serve
        assert cli.main(
            ["submit", "--url", url, "--all", "--limit", "0"]
        ) == 0
        assert "0/0 cases ok" in capsys.readouterr().out

    def test_serve_drains_and_exits_zero(self, serve):
        url, stop, thread, exit_codes = serve
        assert cli.main(
            ["submit", "--url", url, "--case",
             "rodinia/hotspot:strength_reduction", "--output", "jsonl"]
        ) == 0
        stop.set()
        thread.join(30.0)
        assert not thread.is_alive()
        assert exit_codes == [0]
        # The socket is gone: a late submit fails cleanly, not with a hang.
        assert cli.main(
            ["submit", "--url", url, "--healthz"]
        ) == 1


class TestSubmitValidation:
    def test_unknown_case_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["submit", "--case", "rodinia/nope:zilch"])
        assert excinfo.value.code == 2

    def test_no_action_is_a_usage_error(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["submit"])
        assert excinfo.value.code == 2

    def test_conflicting_actions(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(
                ["submit", "--case", "rodinia/hotspot:strength_reduction",
                 "--all"]
            )
        assert excinfo.value.code == 2

    def test_limit_requires_all(self):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(
                ["submit", "--case", "rodinia/hotspot:strength_reduction",
                 "--limit", "3"]
            )
        assert excinfo.value.code == 2

    def test_bad_numeric_flags(self):
        for flags in (
            ["--timeout", "0"],
            ["--poll", "-1"],
            ["--top", "0"],
            ["--sample-period", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                cli.main(
                    ["submit", "--case",
                     "rodinia/hotspot:strength_reduction", *flags]
                )
            assert excinfo.value.code == 2, flags

    def test_unreachable_daemon_exits_one(self, capsys):
        code = cli.main(
            ["submit", "--url", "http://127.0.0.1:9", "--healthz"]
        )
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err


class TestServeValidation:
    def test_bad_serve_flags(self):
        for flags in (
            ["--workers", "0"],
            ["--queue-size", "0"],
            ["--job-ttl", "0"],
            ["--sample-period", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                cli.main(["serve", *flags])
            assert excinfo.value.code == 2, flags
