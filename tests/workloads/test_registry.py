"""Tests for the benchmark-case registry and the synthetic kernels."""

import pytest

from repro.optimizers.registry import default_optimizers
from repro.workloads.registry import (
    all_cases,
    application_cases,
    case_by_name,
    case_names,
    rodinia_cases,
)


def test_registry_reproduces_all_26_table3_rows():
    cases = all_cases()
    assert len(cases) == 26
    assert len(rodinia_cases()) == 19
    assert len(application_cases()) == 7


def test_case_ids_are_unique():
    names = case_names()
    assert len(names) == len(set(names))


def test_every_case_references_a_real_optimizer():
    optimizer_names = {optimizer.name for optimizer in default_optimizers()}
    for case in all_cases():
        assert case.optimizer_name in optimizer_names


def test_paper_numbers_recorded_for_every_case():
    for case in all_cases():
        assert case.paper_achieved_speedup >= 1.0
        assert case.paper_estimated_speedup >= 1.0
        assert case.paper_original_time


def test_lookup_by_id_name_and_kernel():
    assert case_by_name("rodinia/hotspot:strength_reduction").kernel == "calculate_temp"
    assert case_by_name("rodinia/gaussian").optimization == "Thread Increase"
    assert case_by_name("Fan2").name == "rodinia/gaussian"
    with pytest.raises(KeyError):
        case_by_name("not-a-benchmark")


@pytest.mark.parametrize("case", all_cases(), ids=lambda case: case.case_id)
def test_baseline_and_optimized_setups_build(case):
    """Every Table 3 row provides buildable baseline and optimized kernels."""
    baseline = case.build_baseline()
    optimized = case.build_optimized()
    assert case.kernel in baseline.cubin.functions
    assert case.kernel in optimized.cubin.functions
    assert baseline.config.grid_blocks > 0
    assert baseline.cubin.function(case.kernel).instructions
    # The optimized variant differs from the baseline in code, workload or
    # launch configuration (otherwise there is nothing to measure).
    differs = (
        [i.render() for i in baseline.cubin.function(case.kernel).instructions]
        != [i.render() for i in optimized.cubin.function(case.kernel).instructions]
        or baseline.config != optimized.config
        or baseline.workload.loop_trip_counts.keys() != optimized.workload.loop_trip_counts.keys()
        or baseline.workload.uncoalesced_lines != optimized.workload.uncoalesced_lines
        or any(
            baseline.workload.trip_count(line, 0, 64) != optimized.workload.trip_count(line, 0, 64)
            or baseline.workload.trip_count(line, 1, 64) != optimized.workload.trip_count(line, 1, 64)
            for line in baseline.workload.loop_trip_counts
        )
    )
    assert differs, f"optimized variant of {case.case_id} is identical to the baseline"


@pytest.mark.parametrize("case", rodinia_cases()[:4], ids=lambda case: case.case_id)
def test_baseline_kernels_profile_cleanly(case, gpa):
    setup = case.build_baseline()
    profiled = gpa.profile(setup.cubin, setup.kernel, setup.config, setup.workload)
    assert profiled.profile.total_samples > 0
    assert profiled.simulation.issued_instructions > 0
