"""Shared fixtures: a small kernel, its profile and its analysis results."""

from __future__ import annotations

import pytest

from repro.advisor.advisor import GPA


def pytest_configure(config):
    # `xdist_group` pins a module's tests to one pytest-xdist worker under
    # `--dist loadgroup` (CI's parallel matrix), so modules with expensive
    # shared simulation fixtures are not re-simulated on every worker.
    # Registering it here keeps serial runs (no xdist installed) warning-free.
    config.addinivalue_line(
        "markers",
        "xdist_group(name): run all tests of this group on one xdist worker",
    )
from repro.arch.machine import VoltaV100
from repro.blame.attribution import InstructionBlamer
from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.profiler import Profiler
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec


def build_toy_cubin() -> CubinBuilder:
    """A small kernel with a global-load loop, a barrier and a store.

    Lines: 10 prologue, 12 loop header, 13 load, 14 use, 15 counter,
    16 barrier, 17 epilogue.
    """
    builder = CubinBuilder(module_name="toy_module")
    k = builder.kernel("toy_kernel", source_file="toy.cu")
    k.at_line(10)
    k.s2r(0, "SR_TID.X")
    k.mov_imm(2, 0x100)
    k.mov_imm(3, 0)
    k.iadd(2, 2, 0)
    k.mov_imm(8, 0)
    k.mov_imm(9, 1 << 16)
    k.at_line(12)
    k.isetp(0, 8, 9, "LT")
    with k.loop("main", predicate=p(0)):
        k.at_line(12)
        k.iadd(8, 8, imm(1))
        k.at_line(13)
        k.ldg(4, 2)
        k.at_line(14)
        k.ffma(5, 4, 4, 5)
        k.ffma(20, 20, 20, 20)
        k.at_line(16)
        k.bar_sync()
        k.at_line(12)
        k.isetp(0, 8, 9, "LT")
    k.at_line(17)
    k.stg(2, 5)
    k.exit()
    builder.add_function(k.build())
    return builder


@pytest.fixture(scope="session")
def toy_cubin():
    return build_toy_cubin().build()


@pytest.fixture(scope="session")
def toy_workload():
    return WorkloadSpec(name="toy", loop_trip_counts={12: 12})


@pytest.fixture(scope="session")
def toy_config():
    return LaunchConfig(grid_blocks=320, threads_per_block=128)


@pytest.fixture(scope="session")
def toy_profiled(toy_cubin, toy_config, toy_workload):
    profiler = Profiler(VoltaV100, sample_period=4)
    return profiler.profile(toy_cubin, "toy_kernel", toy_config, toy_workload)


@pytest.fixture(scope="session")
def toy_blame(toy_profiled):
    return InstructionBlamer(VoltaV100).blame(toy_profiled.profile, toy_profiled.structure)


@pytest.fixture(scope="session")
def toy_report(toy_profiled):
    gpa = GPA(sample_period=4)
    return gpa.advise_profiled(toy_profiled)


@pytest.fixture(scope="session")
def gpa():
    return GPA(sample_period=8)
