"""Tests for the Table 2 optimizers and their matching rules.

Each optimizer is exercised against the benchmark kernel engineered to
exhibit its inefficiency; the advice must be applicable, match a non-trivial
share of the samples, and estimate a speedup above 1x.  Kernels *without*
the inefficiency must not be matched spuriously.
"""

import pytest

from repro.advisor.advisor import GPA
from repro.optimizers.base import AnalysisContext, OptimizerCategory
from repro.optimizers.registry import OptimizerRegistry, default_optimizers
from repro.optimizers.stall_elimination import WarpBalanceOptimizer
from repro.optimizers.parallel import BlockIncreaseOptimizer, ThreadIncreaseOptimizer
from repro.workloads.registry import case_by_name


@pytest.fixture(scope="module")
def advisor():
    return GPA(sample_period=8)


def report_for(advisor, case_name, optimized=False):
    case = case_by_name(case_name)
    setup = case.build_optimized() if optimized else case.build_baseline()
    return case, advisor.advise(setup.cubin, setup.kernel, setup.config, setup.workload)


class TestRegistry:
    def test_default_registry_has_twelve_optimizers(self):
        # Table 2's eleven plus the Memory Coalescing optimizer.
        assert len(OptimizerRegistry()) == 12

    def test_names_match_table2(self):
        names = {optimizer.name for optimizer in default_optimizers()}
        assert {
            "GPURegisterReuseOptimizer", "GPUStrengthReductionOptimizer",
            "GPUFunctionSplitOptimizer", "GPUFastMathOptimizer",
            "GPUWarpBalanceOptimizer", "GPUMemoryTransactionReductionOptimizer",
            "GPULoopUnrollingOptimizer", "GPUCodeReorderingOptimizer",
            "GPUFunctionInliningOptimizer", "GPUBlockIncreaseOptimizer",
            "GPUThreadIncreaseOptimizer", "GPUMemoryCoalescingOptimizer",
        } == names

    def test_register_and_unregister_custom_optimizer(self):
        registry = OptimizerRegistry()

        class CustomOptimizer(WarpBalanceOptimizer):
            name = "GPUTextureFetchCombinationOptimizer"

        registry.register(CustomOptimizer())
        assert "GPUTextureFetchCombinationOptimizer" in registry
        registry.unregister("GPUTextureFetchCombinationOptimizer")
        assert "GPUTextureFetchCombinationOptimizer" not in registry

    def test_unknown_lookup_raises(self):
        with pytest.raises(KeyError):
            OptimizerRegistry().get("missing")


class TestStallEliminationMatching:
    @pytest.mark.parametrize(
        "case_name,category",
        [
            ("rodinia/hotspot:strength_reduction", OptimizerCategory.STALL_ELIMINATION),
            ("rodinia/backprop:warp_balance", OptimizerCategory.STALL_ELIMINATION),
            ("rodinia/cfd:fast_math", OptimizerCategory.STALL_ELIMINATION),
            ("Quicksilver:register_reuse", OptimizerCategory.STALL_ELIMINATION),
        ],
    )
    def test_expected_optimizer_matches_with_speedup(self, advisor, case_name, category):
        case, report = report_for(advisor, case_name)
        advice = report.advice_for(case.optimizer_name)
        assert advice is not None and advice.applicable
        assert advice.category is category
        assert advice.matched_samples > 0
        assert advice.estimated_speedup > 1.0

    def test_memory_transaction_reduction_matches_throttled_kernel(self, advisor):
        case, report = report_for(advisor, "ExaTENSOR:memory_transaction_reduction")
        advice = report.advice_for(case.optimizer_name)
        assert advice.matched_samples > 0
        assert advice.estimated_speedup > 1.0

    def test_function_split_matches_icache_bound_kernel(self, advisor):
        case, report = report_for(advisor, "rodinia/myocyte:function_splitting")
        advice = report.advice_for("GPUFunctionSplitOptimizer")
        assert advice.matched_samples > 0

    def test_warp_balance_not_matched_without_barriers(self, advisor):
        _case, report = report_for(advisor, "rodinia/kmeans:loop_unrolling")
        advice = report.advice_for("GPUWarpBalanceOptimizer")
        assert advice.matched_samples == 0
        assert advice.estimated_speedup == pytest.approx(1.0)

    def test_register_reuse_not_matched_without_spills(self, advisor):
        _case, report = report_for(advisor, "rodinia/hotspot:strength_reduction")
        advice = report.advice_for("GPURegisterReuseOptimizer")
        assert advice.matched_samples == 0


class TestLatencyHidingMatching:
    def test_loop_unrolling_matches_in_loop_dependences(self, advisor):
        case, report = report_for(advisor, "rodinia/kmeans:loop_unrolling")
        advice = report.advice_for(case.optimizer_name)
        assert advice.applicable and advice.matched_samples > 0
        assert 1.0 < advice.estimated_speedup <= 2.0
        assert advice.details["loops"]

    def test_code_reordering_reports_short_distances(self, advisor):
        case, report = report_for(advisor, "rodinia/b+tree:code_reorder")
        advice = report.advice_for(case.optimizer_name)
        assert advice.applicable and advice.hotspots
        assert any(h.distance is not None and h.distance <= 4 for h in advice.hotspots)
        assert advice.estimated_speedup <= 2.0

    def test_function_inlining_matches_device_function_stalls(self, advisor):
        case, report = report_for(advisor, "Quicksilver:function_inlining")
        advice = report.advice_for(case.optimizer_name)
        assert advice.matched_samples > 0
        assert any(h.source.function != case.kernel for h in advice.hotspots)

    def test_latency_hiding_respects_theorem_bound(self, advisor):
        for name in ("rodinia/kmeans:loop_unrolling", "rodinia/lud:code_reorder"):
            _case, report = report_for(advisor, name)
            for advice in report.advice:
                if advice.category is OptimizerCategory.LATENCY_HIDING:
                    assert advice.estimated_speedup <= 2.0 + 1e-9


class TestParallelMatching:
    def test_block_increase_applicable_only_for_small_grids(self, advisor):
        case, report = report_for(advisor, "rodinia/particlefilter:block_increase")
        advice = report.advice_for(case.optimizer_name)
        assert advice.applicable and advice.estimated_speedup > 1.3
        assert advice.details["current_grid_blocks"] < advice.details["num_sms"]

        _case2, big_grid_report = report_for(advisor, "rodinia/kmeans:loop_unrolling")
        not_applicable = big_grid_report.advice_for("GPUBlockIncreaseOptimizer")
        assert not not_applicable.applicable

    def test_thread_increase_applicable_for_tiny_blocks(self, advisor):
        case, report = report_for(advisor, "rodinia/gaussian:thread_increase")
        advice = report.advice_for(case.optimizer_name)
        assert advice.applicable
        assert advice.estimated_speedup > 2.0
        assert advice.details["proposed_threads_per_block"] >= 128

    def test_thread_increase_not_applicable_for_large_blocks(self, advisor):
        _case, report = report_for(advisor, "rodinia/hotspot:strength_reduction")
        advice = report.advice_for("GPUThreadIncreaseOptimizer")
        assert not advice.applicable


class TestAdviceRanking:
    @pytest.mark.parametrize(
        "case_name,max_rank",
        [
            ("rodinia/backprop:warp_balance", 3),
            ("rodinia/gaussian:thread_increase", 2),
            ("rodinia/hotspot:strength_reduction", 5),
            ("rodinia/particlefilter:block_increase", 2),
            ("ExaTENSOR:memory_transaction_reduction", 3),
            ("Quicksilver:register_reuse", 3),
        ],
    )
    def test_expected_optimizer_in_top_suggestions(self, advisor, case_name, max_rank):
        """The paper applies one of GPA's top-5 suggestions for every kernel."""
        case, report = report_for(advisor, case_name)
        applicable = [item.optimizer for item in report.advice if item.applicable]
        assert case.optimizer_name in applicable[:max_rank]
