"""Tests for the Memory Coalescing optimizer (hierarchy-model signal)."""

import pytest

from repro.api.request import AdvisingRequest
from repro.api.session import AdvisingSession
from repro.optimizers.memory import MemoryCoalescingOptimizer
from repro.workloads.memory_patterns import (
    memory_microbenchmark,
    microbenchmark_config,
    streaming_workload,
    strided_workload,
)


def _advise(memory_model: str, workload):
    session = AdvisingSession(sample_period=4, memory_model=memory_model)
    request = AdvisingRequest(
        source="binary",
        cubin=memory_microbenchmark(),
        kernel="memory_stream",
        config=microbenchmark_config(grid_blocks=32),
        workload=workload,
    )
    return session.advise(request).require_report()


@pytest.fixture(scope="module")
def strided_hierarchy_report():
    return _advise("hierarchy", strided_workload(trip_count=24))


class TestMemoryCoalescingOptimizer:
    def test_not_applicable_on_flat_profiles(self):
        report = _advise("flat", strided_workload(trip_count=24))
        advice = report.advice_for(MemoryCoalescingOptimizer.name)
        assert advice is not None
        assert not advice.applicable
        assert advice.estimated_speedup == 1.0
        assert "flat" in advice.details["reason"]

    def test_matches_uncoalesced_hierarchy_profiles(self, strided_hierarchy_report):
        advice = strided_hierarchy_report.advice_for(MemoryCoalescingOptimizer.name)
        assert advice is not None
        assert advice.applicable
        assert advice.estimated_speedup > 1.0
        assert advice.matched_samples > 0
        assert advice.details["transactions_per_request"] > 4.0
        assert 0.0 < advice.details["excess_transaction_fraction"] < 1.0

    def test_reports_hit_rates_in_details(self, strided_hierarchy_report):
        advice = strided_hierarchy_report.advice_for(MemoryCoalescingOptimizer.name)
        assert set(advice.details) >= {
            "l1_hit_rate", "l2_hit_rate", "dram_bytes",
            "ideal_transactions_per_request",
        }

    def test_coalesced_accesses_match_less_than_strided(self, strided_hierarchy_report):
        coalesced = _advise("hierarchy", streaming_workload(trip_count=24))
        coalesced_advice = coalesced.advice_for(MemoryCoalescingOptimizer.name)
        strided_advice = strided_hierarchy_report.advice_for(
            MemoryCoalescingOptimizer.name)
        assert coalesced_advice.matched_samples < strided_advice.matched_samples

    def test_advice_round_trips_through_the_wire_format(self, strided_hierarchy_report):
        from repro.optimizers.base import OptimizationAdvice

        advice = strided_hierarchy_report.advice_for(MemoryCoalescingOptimizer.name)
        payload = advice.to_dict()
        assert OptimizationAdvice.from_dict(payload).to_dict() == payload
