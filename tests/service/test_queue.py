"""Unit tests of the bounded FIFO job queue."""

import threading

import pytest

from repro.service.errors import QueueFullError, ServiceValidationError
from repro.service.queue import JobQueue


class TestAdmission:
    def test_fifo_order(self):
        queue = JobQueue(4)
        for item in ("a", "b", "c"):
            queue.put(item)
        assert [queue.get(), queue.get(), queue.get()] == ["a", "b", "c"]

    def test_rejects_when_full(self):
        queue = JobQueue(2)
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFullError) as excinfo:
            queue.put("c")
        assert "2/2" in str(excinfo.value)
        # The rejected item was not partially admitted.
        assert queue.depth == 2

    def test_batch_admission_is_atomic(self):
        queue = JobQueue(3)
        queue.put("a")
        with pytest.raises(QueueFullError):
            queue.put_many(["b", "c", "d"])  # 1 + 3 > 3
        assert queue.depth == 1  # nothing of the batch was admitted
        queue.put_many(["b", "c"])
        assert queue.depth == 3
        assert queue.admitted == 3

    def test_oversized_batch_is_a_client_error_not_backpressure(self):
        # Retrying a batch larger than the whole queue can never succeed:
        # that is a 400-style validation error, not a 429.
        queue = JobQueue(2)
        with pytest.raises(ServiceValidationError) as excinfo:
            queue.put_many(["a", "b", "c"])
        assert "exceeds the queue capacity" in str(excinfo.value)
        assert queue.depth == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            JobQueue(0)


class TestConsumption:
    def test_get_timeout(self):
        queue = JobQueue(1)
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.01)

    def test_get_blocks_until_put(self):
        queue = JobQueue(1)
        received = []

        def consume():
            received.append(queue.get(timeout=5.0))

        thread = threading.Thread(target=consume)
        thread.start()
        queue.put("x")
        thread.join(5.0)
        assert received == ["x"]


class TestShutdown:
    def test_sentinels_queue_behind_real_work(self):
        queue = JobQueue(4)
        queue.put_many(["a", "b"])
        queue.close(workers=2)
        # FIFO: both jobs drain before any worker sees its sentinel.
        assert [queue.get() for _ in range(4)] == ["a", "b", None, None]

    def test_sentinels_bypass_capacity(self):
        queue = JobQueue(1)
        queue.put("a")
        queue.close(workers=3)  # must not raise despite the full queue
        assert queue.get() == "a"
        assert queue.get() is None

    def test_sentinels_excluded_from_depth(self):
        queue = JobQueue(2)
        queue.put("a")
        queue.close(workers=2)
        assert queue.depth == 1
        assert len(queue) == 1

    def test_clear_keeps_sentinels(self):
        queue = JobQueue(4)
        queue.put_many(["a", "b"])
        queue.close(workers=1)
        assert queue.clear() == ["a", "b"]
        assert queue.depth == 0
        assert queue.get() is None  # the sentinel survived the clear
