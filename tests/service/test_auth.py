"""Auth and rate limiting: the token bucket, the policy, and the HTTP gate."""

import time

import pytest

from repro.api.request import request_for_case
from repro.service import ServiceClient
from repro.service.auth import ANONYMOUS, AuthPolicy, TokenBucket
from repro.service.errors import (
    AuthenticationError,
    AuthorizationError,
    RateLimitedError,
)

CASE_ID = "rodinia/hotspot:strength_reduction"


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)
        clock.advance(wait)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(3600.0)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0)


class TestAuthPolicy:
    def test_anonymous_mode_accepts_everyone(self):
        policy = AuthPolicy()
        assert policy.anonymous and not policy.limited
        assert policy.authenticate(None) == ANONYMOUS
        assert policy.authenticate("Bearer whatever") == ANONYMOUS
        policy.check_rate(ANONYMOUS)  # no rate -> no-op

    def test_token_mode_maps_tokens_to_clients(self):
        policy = AuthPolicy(tokens={"s3cr3t": "alice", "0ther": "bob"})
        assert not policy.anonymous
        assert policy.authenticate("Bearer s3cr3t") == "alice"
        assert policy.authenticate("bearer 0ther") == "bob"  # scheme case-insensitive

    def test_missing_or_malformed_credentials_are_401(self):
        policy = AuthPolicy(tokens={"s3cr3t": "alice"})
        for header in (None, "", "Basic dXNlcg==", "Bearer", "Bearer "):
            with pytest.raises(AuthenticationError):
                policy.authenticate(header)

    def test_unknown_token_is_403(self):
        policy = AuthPolicy(tokens={"s3cr3t": "alice"})
        with pytest.raises(AuthorizationError):
            policy.authenticate("Bearer wrong")

    def test_per_client_buckets_are_independent(self):
        clock = FakeClock()
        policy = AuthPolicy(
            tokens={"a": "alice", "b": "bob"}, rate=1.0, burst=1, clock=clock,
        )
        policy.check_rate("alice")
        with pytest.raises(RateLimitedError) as excinfo:
            policy.check_rate("alice")
        assert excinfo.value.retry_after == pytest.approx(1.0)
        policy.check_rate("bob")  # bob's bucket is untouched

    def test_burst_defaults_to_int_rate(self):
        assert AuthPolicy(rate=4.0).burst == 4
        assert AuthPolicy(rate=0.5).burst == 1

    def test_describe_never_leaks_tokens(self):
        policy = AuthPolicy(tokens={"s3cr3t": "alice"}, rate=2.0)
        description = policy.describe()
        assert description == {
            "anonymous": False, "clients": 1, "rate": 2.0, "burst": 2,
        }
        assert "s3cr3t" not in str(description)


class TestAuthOverHTTP:
    def test_missing_token_is_401_with_www_authenticate(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(tokens={"s3cr3t": "alice"})
        )
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        with pytest.raises(AuthenticationError):
            client.submit(request)
        with pytest.raises(AuthenticationError):
            client.stats()

    def test_wrong_token_is_403(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(tokens={"s3cr3t": "alice"}), token="wrong",
        )
        with pytest.raises(AuthorizationError):
            client.stats()

    def test_healthz_is_credential_free(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(tokens={"s3cr3t": "alice"})
        )
        assert client.healthz()["state"] == "serving"

    def test_valid_token_works_end_to_end(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(tokens={"s3cr3t": "alice"}), token="s3cr3t",
        )
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        result = client.advise(request, timeout=60.0)
        assert result.ok

    def test_burst_is_429_with_retry_after(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(rate=0.001, burst=1),
            rate_limit_patience=0.0,
        )
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        client.submit(request)
        with pytest.raises(RateLimitedError) as excinfo:
            client.submit(request)
        # The bucket's refill delay survives the HTTP round trip.
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 1.0

    def test_reads_are_never_rate_limited(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(rate=0.001, burst=1), rate_limit_patience=0.0,
        )
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        job_id = client.submit(request)
        for _ in range(5):
            client.job(job_id)
            client.stats()

    def test_client_honors_retry_after(self, make_service):
        """A patient client sleeps through the 429 and succeeds."""
        _daemon, _server, client = make_service(
            auth=AuthPolicy(rate=2.0, burst=1), rate_limit_patience=10.0,
        )
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        started = time.monotonic()
        first = client.submit(request)
        second = client.submit(request)  # retried internally after ~0.5s
        elapsed = time.monotonic() - started
        assert first and second
        assert elapsed >= 0.4

    def test_impatient_client_raises(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(rate=0.01, burst=1), rate_limit_patience=0.5,
        )
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        client.submit(request)
        with pytest.raises(RateLimitedError):
            client.submit(request)

    def test_stats_describe_the_policy(self, make_service):
        _daemon, _server, client = make_service(
            auth=AuthPolicy(tokens={"s3cr3t": "alice"}, rate=5.0),
            token="s3cr3t",
        )
        assert client.stats()["auth"] == {
            "anonymous": False, "clients": 1, "rate": 5.0, "burst": 5,
        }
