"""Daemon lifecycle and failure-mode tests (inline execution mode).

Timing-sensitive scenarios (backpressure, drain) are made deterministic by
replacing ``AdvisingDaemon._execute`` with a gate the test controls, so a
worker can be held "busy" for exactly as long as the scenario needs.
"""

import json
import threading
import time

import pytest

from repro.api.request import AdvisingRequest, request_for_case
from repro.api.result import AdvisingResult
from repro.api.schema import API_SCHEMA_VERSION
from repro.api.session import AdvisingSession
from repro.service import ServiceConfig
from repro.service.errors import (
    QueueFullError,
    ServiceError,
    ServiceUnavailableError,
    ServiceValidationError,
    UnknownJobError,
)

CASE_ID = "rodinia/hotspot:strength_reduction"


def hotspot_request(**knobs):
    return request_for_case(CASE_ID, arch_flag="sm_70", **knobs)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def fake_result_payload(request: AdvisingRequest, index: int = 0,
                        error=None) -> dict:
    return AdvisingResult(
        request=request, index=index, label=request.describe(),
        arch_flag="sm_70", sample_period=8, error=error,
    ).to_dict()


class GatedExecute:
    """An ``_execute`` stand-in that blocks until the test releases it."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = []

    def __call__(self, payload, index):
        self.calls.append(index)
        assert self.gate.wait(10.0), "test never released the execute gate"
        return {
            "result": fake_result_payload(
                AdvisingRequest.from_dict(payload), index
            ),
            "cache_hits": 0,
            "cache_misses": 0,
        }


class TestRoundTrip:
    def test_daemon_result_is_bit_identical_to_inline_advise(self, make_daemon):
        daemon = make_daemon()
        request = hotspot_request()
        job_id = daemon.submit(request.to_dict())
        assert wait_until(lambda: daemon.store.get(job_id).terminal)
        job = daemon.store.get(job_id)
        assert job.state == "done"

        inline = AdvisingSession().advise(request)
        daemon_result = AdvisingResult.from_dict(job.result)
        assert daemon_result.ok
        assert json.dumps(daemon_result.report.to_dict()) == json.dumps(
            inline.report.to_dict()
        )
        assert daemon_result.arch_flag == inline.arch_flag
        assert daemon_result.sample_period == inline.sample_period
        assert daemon_result.simulation_scope == inline.simulation_scope
        assert daemon_result.memory_model == inline.memory_model

    def test_batch_keeps_submission_indices(self, make_daemon):
        daemon = make_daemon()
        payloads = [hotspot_request().to_dict() for _ in range(3)]
        job_ids = daemon.submit_batch(payloads)
        assert len(job_ids) == 3
        assert wait_until(
            lambda: all(daemon.store.get(job_id).terminal for job_id in job_ids)
        )
        for position, job_id in enumerate(job_ids):
            job = daemon.store.get(job_id)
            assert job.index == position
            assert job.result["index"] == position

    def test_stats_counters(self, make_daemon):
        daemon = make_daemon()
        job_id = daemon.submit(hotspot_request().to_dict())
        assert wait_until(lambda: daemon.store.get(job_id).terminal)
        stats = daemon.stats()
        assert stats["kind"] == "service_stats"
        assert stats["schema_version"] == API_SCHEMA_VERSION
        assert stats["state"] == "serving"
        assert stats["jobs_submitted"] == 1
        assert stats["jobs_served"] == 1
        assert stats["jobs_failed"] == 0
        assert stats["queue_depth"] == 0
        assert stats["cache"] is None  # no cache configured

    def test_healthz_echoes_config(self, make_daemon):
        config = ServiceConfig(arch_flag="sm_80", sample_period=16)
        daemon = make_daemon(config)
        health = daemon.healthz()
        assert health["status"] == "ok"
        assert health["state"] == "serving"
        assert health["config"]["arch_flag"] == "sm_80"
        assert health["config"]["sample_period"] == 16


class TestValidation:
    def test_malformed_envelope_rejected_at_submit(self, make_daemon):
        daemon = make_daemon()
        with pytest.raises(ServiceValidationError):
            daemon.submit({"kind": "advising_request"})  # no schema_version
        with pytest.raises(ServiceValidationError):
            daemon.submit({"schema_version": 999, "kind": "advising_request"})
        with pytest.raises(ServiceValidationError):
            daemon.submit("not a dict")
        assert daemon.store.counts.submitted == 0

    def test_batch_rejects_on_first_bad_request(self, make_daemon):
        daemon = make_daemon()
        good = hotspot_request().to_dict()
        with pytest.raises(ServiceValidationError) as excinfo:
            daemon.submit_batch([good, {"bad": "envelope"}])
        assert "request 1" in str(excinfo.value)
        # Atomic: the good request was not admitted either.
        assert daemon.store.counts.submitted == 0
        assert daemon.queue.depth == 0

    def test_empty_batch_rejected(self, make_daemon):
        daemon = make_daemon()
        with pytest.raises(ServiceValidationError):
            daemon.submit_batch([])

    def test_bad_worker_count(self):
        from repro.service import AdvisingDaemon

        with pytest.raises(ServiceValidationError):
            AdvisingDaemon(workers=0)

    def test_bad_config(self):
        with pytest.raises(ServiceValidationError):
            ServiceConfig(arch_flag="sm_999")
        with pytest.raises(ServiceValidationError):
            ServiceConfig(sample_period=0)
        with pytest.raises(ServiceValidationError):
            ServiceConfig(simulation_scope="half_wave")
        with pytest.raises(ServiceValidationError):
            ServiceConfig(memory_model="quantum")


class TestBackpressure:
    def test_queue_full_rejection_and_recovery(self, make_daemon):
        gate = GatedExecute()
        daemon = make_daemon(start=False, workers=1, queue_capacity=1)
        daemon._execute = gate
        daemon.start()

        # Distinct sample periods keep the requests from coalescing — this
        # test is about queue capacity, not dedup.
        first = daemon.submit(hotspot_request(sample_period=2).to_dict())
        # The single worker picks the first job up; the queue is empty again.
        assert wait_until(lambda: daemon.store.get(first).state == "running")
        second = daemon.submit(hotspot_request(sample_period=4).to_dict())
        with pytest.raises(QueueFullError) as excinfo:
            daemon.submit(hotspot_request(sample_period=8).to_dict())
        assert "full" in str(excinfo.value)
        # The rejected submission left no trace.
        assert daemon.store.counts.submitted == 2

        gate.gate.set()
        assert wait_until(lambda: daemon.store.get(second).terminal)
        # Capacity is available again after the drain.
        third = daemon.submit(hotspot_request(sample_period=16).to_dict())
        assert wait_until(lambda: daemon.store.get(third).terminal)


class TestWorkerCrash:
    def test_crash_marks_job_failed_with_captured_error(self, make_daemon):
        daemon = make_daemon(start=False, workers=1)

        def exploding_execute(payload, index):
            raise RuntimeError("worker process died mid-simulation")

        daemon._execute = exploding_execute
        daemon.start()
        job_id = daemon.submit(hotspot_request().to_dict())
        assert wait_until(lambda: daemon.store.get(job_id).terminal)
        job = daemon.store.get(job_id)
        assert job.state == "failed"
        assert "worker process died mid-simulation" in job.error
        # Mirroring BatchAdvisor error capture: a well-formed failed result
        # is synthesized, with the traceback in result.error.
        result = AdvisingResult.from_dict(job.result)
        assert not result.ok
        assert "worker process died mid-simulation" in result.error
        assert result.label == job.label
        # The worker thread survived; the daemon keeps serving.
        assert daemon.state == "serving"

    def test_advising_failure_is_captured_not_raised(self, make_daemon):
        daemon = make_daemon()
        # The envelope is valid, but the case does not resolve at run time.
        bogus = AdvisingRequest(source="case", case_id="rodinia/nope:zilch")
        job_id = daemon.submit(bogus.to_dict())
        assert wait_until(lambda: daemon.store.get(job_id).terminal)
        job = daemon.store.get(job_id)
        assert job.state == "failed"
        result = AdvisingResult.from_dict(job.result)
        assert not result.ok and "nope" in result.error


class TestShutdown:
    def test_graceful_drain_settles_queued_jobs(self, make_daemon):
        gate = GatedExecute()
        daemon = make_daemon(start=False, workers=1, queue_capacity=8)
        daemon._execute = gate
        daemon.start()
        job_ids = [daemon.submit(hotspot_request().to_dict()) for _ in range(3)]
        assert wait_until(lambda: len(gate.calls) == 1)

        done = {}
        shutdown_thread = threading.Thread(
            target=lambda: done.setdefault("summary", daemon.shutdown(drain=True))
        )
        shutdown_thread.start()
        assert wait_until(lambda: daemon.state == "draining")
        # New submissions bounce while draining.
        with pytest.raises(ServiceUnavailableError):
            daemon.submit(hotspot_request().to_dict())

        gate.gate.set()
        shutdown_thread.join(10.0)
        assert not shutdown_thread.is_alive()
        summary = done["summary"]
        assert summary["state"] == "stopped"
        assert summary["jobs_served"] == 3
        assert summary["jobs_aborted"] == 0
        for job_id in job_ids:
            assert daemon.store.get(job_id).state == "done"

    def test_no_drain_aborts_queued_jobs(self, make_daemon):
        gate = GatedExecute()
        daemon = make_daemon(start=False, workers=1, queue_capacity=8)
        daemon._execute = gate
        daemon.start()
        # Distinct periods: identical submissions would coalesce onto the
        # running job and be served by its fan-out instead of aborted.
        running, queued_a, queued_b = [
            daemon.submit(hotspot_request(sample_period=period).to_dict())
            for period in (2, 4, 8)
        ]
        assert wait_until(lambda: daemon.store.get(running).state == "running")

        done = {}
        shutdown_thread = threading.Thread(
            target=lambda: done.setdefault("summary", daemon.shutdown(drain=False))
        )
        shutdown_thread.start()
        # The in-flight job is still honoured; only queued work is aborted.
        assert wait_until(lambda: daemon.store.get(queued_b).terminal)
        gate.gate.set()
        shutdown_thread.join(10.0)
        summary = done["summary"]
        assert summary["jobs_aborted"] == 2
        # Aborted jobs were never executed: they are neither served nor
        # failed executions.
        assert summary["jobs_served"] == 1
        assert summary["jobs_failed"] == 0
        assert daemon.store.get(running).state == "done"
        for job_id in (queued_a, queued_b):
            job = daemon.store.get(job_id)
            assert job.state == "failed"
            assert "shut down before the job ran" in job.error

    def test_double_shutdown_is_idempotent(self, make_daemon):
        daemon = make_daemon()
        job_id = daemon.submit(hotspot_request().to_dict())
        assert wait_until(lambda: daemon.store.get(job_id).terminal)
        first = daemon.shutdown()
        second = daemon.shutdown()
        third = daemon.shutdown(drain=False)
        assert first == second == third
        assert first["state"] == "stopped"
        assert first["jobs_served"] == 1

    def test_shutdown_before_start(self, make_daemon):
        daemon = make_daemon(start=False)
        summary = daemon.shutdown()
        assert summary["state"] == "stopped"
        with pytest.raises(ServiceError):
            daemon.start()  # a stopped daemon does not restart

    def test_results_stay_queryable_after_shutdown(self, make_daemon):
        daemon = make_daemon()
        job_id = daemon.submit(hotspot_request().to_dict())
        assert wait_until(lambda: daemon.store.get(job_id).terminal)
        daemon.shutdown()
        assert daemon.store.view(job_id)["state"] == "done"
        with pytest.raises(UnknownJobError):
            daemon.store.view("never-existed")
