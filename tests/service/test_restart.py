"""Restart survival: a SIGKILL'd daemon replays its results byte-identically.

The real thing, not a simulation of it: a ``gpa-advise serve`` subprocess
with ``--store``, killed with ``SIGKILL`` (no drain, no atexit, nothing),
then restarted on the same store.  Completed jobs must replay the exact
bytes they served before the crash, and the interrupted backlog must be
re-queued and finished by the restarted daemon.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.api.request import request_for_case
from repro.service import ServiceClient

# Real subprocess daemons: keep the whole module on one xdist worker.
pytestmark = pytest.mark.xdist_group("service_restart")

CASE_ID = "rodinia/hotspot:strength_reduction"


def start_daemon(tmp_path, store, cache_dir, extra=()):
    """Launch ``gpa-advise serve`` and wait for its ready file."""
    ready = tmp_path / f"ready-{time.monotonic_ns()}.txt"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.advisor.cli", "serve",
         "--host", "127.0.0.1", "--port", "0", "--inline", "--workers", "1",
         "--store", str(store), "--cache-dir", str(cache_dir),
         "--ready-file", str(ready), *extra],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if ready.exists() and ready.read_text().strip():
            host, port, pid = ready.read_text().split()
            return process, f"http://{host}:{port}"
        if process.poll() is not None:
            raise RuntimeError(f"daemon exited early: rc={process.returncode}")
        time.sleep(0.05)
    process.kill()
    raise RuntimeError("daemon never became ready")


def raw_job_bytes(url, job_id):
    with urllib.request.urlopen(f"{url}/v1/jobs/{job_id}", timeout=10.0) as r:
        return r.read()


def sigkill(process):
    process.send_signal(signal.SIGKILL)
    process.wait(timeout=10.0)


def test_sigkill_restart_replays_results_byte_identically(tmp_path):
    store = tmp_path / "jobs.sqlite3"
    cache_dir = tmp_path / "cache"

    process, url = start_daemon(tmp_path, store, cache_dir)
    survivor = None
    try:
        client = ServiceClient(url, timeout=10.0)
        done = client.submit(request_for_case(CASE_ID, arch_flag="sm_70"))
        view = client.wait(done, timeout=120.0)
        assert view.state == "done"
        before = raw_job_bytes(url, done)

        # Pile a backlog behind a running job, then pull the plug.  Distinct
        # sample periods so nothing coalesces: the point is the queue.
        backlog = [
            client.submit(request_for_case(
                CASE_ID, arch_flag="sm_70", sample_period=period,
            ))
            for period in (3, 5, 7)
        ]
        sigkill(process)

        survivor, url2 = start_daemon(tmp_path, store, cache_dir)
        client2 = ServiceClient(url2, timeout=10.0)

        # 1) The completed result replays byte for byte.
        after = raw_job_bytes(url2, done)
        assert after == before

        # 2) The interrupted backlog was recovered and runs to completion.
        for job_id in backlog:
            replayed = client2.wait(job_id, timeout=120.0)
            assert replayed.state == "done", replayed.error
        stats = client2.stats()
        assert stats["jobs_recovered"] >= len(backlog)
    finally:
        for p in (process, survivor):
            if p is not None and p.poll() is None:
                p.kill()
                p.wait(timeout=10.0)


def test_restarted_daemon_rejects_future_schema_stores(tmp_path):
    """A store stamped by another build refuses to open instead of
    replaying wire forms a strict loader would reject."""
    import sqlite3

    from repro.service.repository import JobRepository, RepositoryStateError

    store = tmp_path / "jobs.sqlite3"
    JobRepository(store).close()
    conn = sqlite3.connect(str(store))
    conn.execute("UPDATE meta SET value = '999' WHERE key = 'api_schema'")
    conn.commit()
    conn.close()
    with pytest.raises(RepositoryStateError):
        JobRepository(store)


def test_two_daemon_processes_share_one_store(tmp_path):
    """Two live daemons on one host, one --store, one --cache-dir: a job
    submitted to A is served — byte-identically — by B."""
    store = tmp_path / "jobs.sqlite3"
    cache_dir = tmp_path / "cache"

    a_process, a_url = start_daemon(tmp_path, store, cache_dir)
    b_process = None
    try:
        b_process, b_url = start_daemon(tmp_path, store, cache_dir)
        client_a = ServiceClient(a_url, timeout=10.0)
        job_id = client_a.submit(request_for_case(CASE_ID, arch_flag="sm_70"))
        view = client_a.wait(job_id, timeout=120.0)
        assert view.state == "done"

        assert raw_job_bytes(b_url, job_id) == raw_job_bytes(a_url, job_id)
        # Shared persistent counters: both daemons report the same store.
        stats_b = ServiceClient(b_url, timeout=10.0).stats()
        assert stats_b["jobs_done"] >= 1
    finally:
        for p in (a_process, b_process):
            if p is not None and p.poll() is None:
                p.kill()
                p.wait(timeout=10.0)


def test_replayed_view_is_json_stable(tmp_path):
    """The replayed view round-trips through json with identical key order
    (the property byte-identity rests on)."""
    from repro.service.repository import JobRepository

    store = tmp_path / "jobs.sqlite3"
    result = {"z": 1, "a": {"nested": [3, 2, 1]}, "m": None}
    repo = JobRepository(store, ttl=None)
    job = repo.create({"kind": "advising_request"}, "case")
    repo.finish(job.job_id, result, None)
    first = json.dumps(repo.view(job.job_id))
    repo.close()

    reopened = JobRepository(store, ttl=None)
    try:
        assert json.dumps(reopened.view(job.job_id)) == first
    finally:
        reopened.close()
