"""The HTTP protocol and the client, over a real localhost socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.request import request_for_case
from repro.api.schema import API_SCHEMA_VERSION
from repro.api.session import AdvisingSession
from repro.service import ServiceConfig
from repro.service.errors import (
    QueueFullError,
    ServiceConnectionError,
    ServiceTimeoutError,
    ServiceUnavailableError,
    ServiceValidationError,
    UnknownJobError,
)

CASE_ID = "rodinia/hotspot:strength_reduction"


def hotspot_request(**knobs):
    return request_for_case(CASE_ID, arch_flag="sm_70", **knobs)


def raw_request(url, method="GET", body=None, headers=None):
    """A raw urllib round-trip returning (status, parsed-or-text body)."""
    data = body.encode("utf-8") if isinstance(body, str) else body
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            status, raw = response.status, response.read()
    except urllib.error.HTTPError as exc:
        status, raw = exc.code, exc.read()
    text = raw.decode("utf-8")
    try:
        return status, json.loads(text)
    except ValueError:
        return status, text


class TestProtocol:
    def test_healthz(self, make_service):
        _, server, client = make_service()
        health = client.healthz()
        assert health["kind"] == "healthz"
        assert health["schema_version"] == API_SCHEMA_VERSION
        assert health["status"] == "ok"
        assert health["config"]["arch_flag"] == "sm_70"

    def test_advise_round_trip_is_bit_identical(self, make_service):
        _, _, client = make_service()
        request = hotspot_request()
        service_result = client.advise(request, timeout=60.0)
        inline = AdvisingSession().advise(request)
        assert service_result.ok
        assert json.dumps(service_result.report.to_dict()) == json.dumps(
            inline.report.to_dict()
        )
        # The request itself also survives the boundary byte-for-byte.
        assert json.dumps(service_result.request.to_dict()) == json.dumps(
            request.to_dict()
        )

    def test_batch_round_trip_ordered(self, make_service):
        _, _, client = make_service(workers=2)
        requests = [hotspot_request() for _ in range(3)]
        results = client.advise_many(requests, timeout=120.0)
        assert [result.index for result in results] == [0, 1, 2]
        assert all(result.ok for result in results)
        # All three ran the same deterministic workload.
        reports = {json.dumps(result.report.to_dict()) for result in results}
        assert len(reports) == 1

    def test_job_view_over_http(self, make_service):
        _, _, client = make_service()
        job_id = client.submit(hotspot_request())
        view = client.wait(job_id, timeout=60.0)
        assert view.job_id == job_id
        assert view.state == "done"
        assert view.result is not None and view.result.ok
        assert view.raw["kind"] == "job"
        assert view.raw["schema_version"] == API_SCHEMA_VERSION

    def test_stats_over_http(self, make_service):
        _, _, client = make_service()
        client.advise(hotspot_request(), timeout=60.0)
        stats = client.stats()
        assert stats["jobs_served"] == 1
        assert stats["state"] == "serving"


class TestFailureModes:
    def test_malformed_envelope_is_400_without_traceback(self, make_service):
        _, server, _ = make_service()
        for payload in (
            {"request": {"kind": "advising_request"}},      # no schema_version
            {"request": {"schema_version": 1, "kind": "advising_request"}},
            {"request": {"schema_version": API_SCHEMA_VERSION, "kind": "hat"}},
            {"request": 42},
            {"wrong_key": {}},
            {"request": {"schema_version": API_SCHEMA_VERSION,
                         "kind": "advising_request", "source": "case"}},
        ):
            status, body = raw_request(
                f"{server.url}/v1/advise", "POST", json.dumps(payload)
            )
            assert status == 400, (payload, status, body)
            assert "error" in body
            assert "Traceback" not in json.dumps(body), payload

    def test_invalid_json_body_is_400(self, make_service):
        _, server, _ = make_service()
        status, body = raw_request(f"{server.url}/v1/advise", "POST", "{not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_empty_body_is_400(self, make_service):
        _, server, _ = make_service()
        status, body = raw_request(f"{server.url}/v1/advise", "POST", b"")
        assert status == 400
        assert "body is required" in body["error"]

    def test_non_object_body_is_400(self, make_service):
        _, server, _ = make_service()
        status, body = raw_request(f"{server.url}/v1/advise", "POST", "[1, 2]")
        assert status == 400
        assert "JSON object" in body["error"]

    def test_unknown_job_is_404(self, make_service):
        _, server, client = make_service()
        status, body = raw_request(f"{server.url}/v1/jobs/deadbeef")
        assert status == 404
        assert "deadbeef" in body["error"]
        with pytest.raises(UnknownJobError):
            client.job("deadbeef")

    def test_unknown_path_is_404(self, make_service):
        _, server, _ = make_service()
        for path in ("/v1/nope", "/v2/advise", "/", "/v1/jobs/"):
            status, _ = raw_request(f"{server.url}{path}")
            assert status == 404, path

    def test_wrong_method_is_405(self, make_service):
        _, server, _ = make_service()
        status, body = raw_request(
            f"{server.url}/v1/advise", "PUT", json.dumps({})
        )
        assert status == 405

    def test_queue_full_is_429(self, make_service):
        gate = threading.Event()
        daemon, server, client = make_service(
            start=False, workers=1, queue_capacity=1
        )

        def gated_execute(payload, index):
            assert gate.wait(10.0)
            raise RuntimeError("unreachable in this test")

        daemon._execute = gated_execute
        daemon.start()
        # Distinct periods so nothing coalesces — backpressure needs real
        # queue entries.
        first = client.submit(hotspot_request(sample_period=2))
        # Wait for the worker to occupy itself with the first job.
        import time

        deadline = time.monotonic() + 10.0
        while daemon.store.get(first).state != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.submit(hotspot_request(sample_period=4))  # fills the queue
        with pytest.raises(QueueFullError):
            client.submit(hotspot_request(sample_period=8))
        status, body = raw_request(
            f"{server.url}/v1/advise", "POST",
            json.dumps({"request": hotspot_request(sample_period=16).to_dict()}),
        )
        assert status == 429
        assert "full" in body["error"]
        gate.set()

    def test_draining_daemon_answers_503(self, make_service):
        daemon, server, client = make_service()
        daemon.shutdown()
        with pytest.raises(ServiceUnavailableError):
            client.submit(hotspot_request())
        status, body = raw_request(
            f"{server.url}/v1/advise", "POST",
            json.dumps({"request": hotspot_request().to_dict()}),
        )
        assert status == 503
        # Results of already-served jobs stay readable; health reports state.
        assert client.healthz()["state"] == "stopped"

    def test_client_validation_error_round_trips(self, make_service):
        _, _, client = make_service()
        with pytest.raises(ServiceValidationError):
            client.submit({"kind": "advising_request"})
        with pytest.raises(ServiceValidationError):
            client.submit_many([])

    def test_unreachable_daemon(self):
        from repro.service import ServiceClient

        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ServiceConnectionError):
            client.healthz()

    def test_wait_timeout(self, make_service):
        daemon, _, client = make_service(start=False, workers=1)
        gate = threading.Event()

        def gated_execute(payload, index):
            assert gate.wait(10.0)
            raise RuntimeError("unreachable in this test")

        daemon._execute = gated_execute
        daemon.start()
        job_id = client.submit(hotspot_request())
        with pytest.raises(ServiceTimeoutError):
            client.wait(job_id, timeout=0.2, poll_interval=0.02)
        gate.set()


class TestConfigKnobs:
    def test_daemon_config_applies_to_requests(self, make_service):
        # A daemon configured for sample_period=32 runs session-default
        # requests at 32 — exactly like an inline session built that way.
        config = ServiceConfig(sample_period=32)
        _, _, client = make_service(config)
        result = client.advise(hotspot_request(), timeout=60.0)
        inline = AdvisingSession(sample_period=32).advise(hotspot_request())
        assert result.sample_period == 32
        assert json.dumps(result.report.to_dict()) == json.dumps(
            inline.report.to_dict()
        )

    def test_per_request_knobs_override_daemon_config(self, make_service):
        _, _, client = make_service()
        request = hotspot_request(sample_period=16)
        result = client.advise(request, timeout=60.0)
        inline = AdvisingSession().advise(request)
        assert result.sample_period == 16
        assert json.dumps(result.report.to_dict()) == json.dumps(
            inline.report.to_dict()
        )
