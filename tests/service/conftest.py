"""Shared fixtures of the service test suite.

Daemons default to **inline** execution (worker threads, no process pool):
the pool path's correctness is covered by the dedicated acceptance tests,
and forking a fresh ProcessPoolExecutor for every unit test would dominate
the suite's runtime.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import (
    AdvisingDaemon,
    ServiceClient,
    ServiceConfig,
    ServiceHTTPServer,
)


@pytest.fixture
def make_daemon():
    """Factory for started daemons; everything made here is shut down."""
    created = []

    def make(config=None, *, start=True, **kwargs):
        kwargs.setdefault("use_pool", False)
        daemon = AdvisingDaemon(config or ServiceConfig(), **kwargs)
        created.append(daemon)
        if start:
            daemon.start()
        return daemon

    yield make
    for daemon in created:
        daemon.shutdown(drain=False)


@pytest.fixture
def make_service(make_daemon):
    """Factory for a running daemon + HTTP server + client triple."""
    servers = []

    def make(config=None, *, auth=None, token=None,
             rate_limit_patience=None, **kwargs):
        daemon = make_daemon(config, **kwargs)
        server = ServiceHTTPServer(("127.0.0.1", 0), daemon, auth=auth)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        client_kwargs = {"timeout": 10.0, "token": token}
        if rate_limit_patience is not None:
            client_kwargs["rate_limit_patience"] = rate_limit_patience
        return daemon, server, ServiceClient(server.url, **client_kwargs)

    yield make
    for server in servers:
        server.shutdown()
        server.server_close()
