"""Unit tests of the job store: state machine, views, TTL eviction."""

import pytest

from repro.api.schema import API_SCHEMA_VERSION
from repro.service.errors import UnknownJobError
from repro.service.jobs import JOB_STATES, JobStore, TERMINAL_STATES


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


PAYLOAD = {"kind": "advising_request", "schema_version": API_SCHEMA_VERSION}


class TestStateMachine:
    def test_lifecycle(self):
        store = JobStore()
        job = store.create(PAYLOAD, "case-a")
        assert job.state == "queued" and not job.terminal
        assert job.state in JOB_STATES

        store.mark_running(job.job_id)
        assert store.get(job.job_id).state == "running"

        store.finish(job.job_id, {"ok": True}, None)
        finished = store.get(job.job_id)
        assert finished.state == "done" and finished.terminal
        assert finished.state in TERMINAL_STATES
        assert store.counts.done == 1 and store.counts.failed == 0

    def test_error_marks_failed(self):
        store = JobStore()
        job = store.create(PAYLOAD, "case-b")
        store.mark_running(job.job_id)
        store.finish(job.job_id, {"error": "boom"}, "boom\n  traceback")
        failed = store.get(job.job_id)
        assert failed.state == "failed"
        assert failed.error == "boom\n  traceback"
        assert store.counts.failed == 1
        assert store.counts.served == 1

    def test_finish_straight_from_queue(self):
        # An aborted (never-run) job still gets coherent timestamps.
        store = JobStore()
        job = store.create(PAYLOAD, "case-c")
        store.finish(job.job_id, None, "aborted")
        view = store.view(job.job_id)
        assert view["state"] == "failed"
        assert view["waited_seconds"] is not None

    def test_unknown_job(self):
        store = JobStore()
        with pytest.raises(UnknownJobError) as excinfo:
            store.get("nope")
        assert "nope" in str(excinfo.value)
        with pytest.raises(UnknownJobError):
            store.view("nope")
        with pytest.raises(UnknownJobError):
            store.mark_running("nope")

    def test_discard_forgets_submission(self):
        store = JobStore()
        job = store.create(PAYLOAD, "case-d")
        assert store.counts.submitted == 1
        store.discard(job.job_id)
        assert store.counts.submitted == 0
        assert job.job_id not in store

    def test_view_shape(self):
        store = JobStore()
        job = store.create(PAYLOAD, "case-e", index=3)
        view = store.view(job.job_id)
        assert view["kind"] == "job"
        assert view["schema_version"] == API_SCHEMA_VERSION
        assert view["job_id"] == job.job_id
        assert view["state"] == "queued"
        assert view["index"] == 3
        assert view["label"] == "case-e"
        assert view["result"] is None and view["error"] is None

    def test_job_ids_are_unique(self):
        store = JobStore()
        ids = {store.create(PAYLOAD, "x").job_id for _ in range(100)}
        assert len(ids) == 100


class TestTtlEviction:
    def test_terminal_jobs_evict_after_ttl(self):
        clock = FakeClock()
        store = JobStore(ttl=60.0, clock=clock)
        job = store.create(PAYLOAD, "old")
        store.finish(job.job_id, {"ok": True}, None)
        clock.advance(61.0)
        assert store.evict() == 1
        assert store.counts.evicted == 1
        with pytest.raises(UnknownJobError):
            store.get(job.job_id)

    def test_live_jobs_never_evict(self):
        clock = FakeClock()
        store = JobStore(ttl=60.0, clock=clock)
        queued = store.create(PAYLOAD, "queued")
        running = store.create(PAYLOAD, "running")
        store.mark_running(running.job_id)
        clock.advance(3600.0)
        assert store.evict() == 0
        assert store.get(queued.job_id).state == "queued"
        assert store.get(running.job_id).state == "running"

    def test_eviction_piggybacks_on_access(self):
        clock = FakeClock()
        store = JobStore(ttl=60.0, clock=clock)
        old = store.create(PAYLOAD, "old")
        store.finish(old.job_id, None, None)
        clock.advance(61.0)
        fresh = store.create(PAYLOAD, "fresh")  # triggers eviction
        assert old.job_id not in store
        assert fresh.job_id in store

    def test_ttl_none_disables_eviction(self):
        clock = FakeClock()
        store = JobStore(ttl=None, clock=clock)
        job = store.create(PAYLOAD, "kept")
        store.finish(job.job_id, None, None)
        clock.advance(10**9)
        assert store.evict() == 0
        assert store.get(job.job_id).state == "done"

    def test_ttl_validation(self):
        with pytest.raises(ValueError):
            JobStore(ttl=0)
        with pytest.raises(ValueError):
            JobStore(ttl=-5.0)

    def test_pending_lists_only_live_jobs(self):
        store = JobStore()
        live = store.create(PAYLOAD, "live")
        settled = store.create(PAYLOAD, "settled")
        store.finish(settled.job_id, None, None)
        assert store.pending() == [live.job_id]
