"""Unit tests of the SQLite job repository: durability, recovery, eviction.

Mirrors ``test_jobs.py`` where the :class:`JobRegistry` contract is shared,
and adds what only a persistent store can promise: results that survive a
close/reopen byte-identically, crash recovery that re-queues the interrupted
backlog, and a schema guard that refuses stores written by other builds.
"""

import json
import sqlite3

import pytest

from repro.api.schema import API_SCHEMA_VERSION
from repro.service.errors import UnknownJobError
from repro.service.jobs import JobRegistry, JobStore
from repro.service.repository import (
    REPOSITORY_SCHEMA_VERSION,
    JobRepository,
    RepositoryStateError,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


PAYLOAD = {"kind": "advising_request", "schema_version": API_SCHEMA_VERSION}


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "jobs.sqlite3"


@pytest.fixture
def repo(store_path):
    repository = JobRepository(store_path, ttl=None)
    yield repository
    repository.close()


class TestContract:
    def test_satisfies_the_job_registry_protocol(self, repo):
        assert isinstance(repo, JobRegistry)
        assert isinstance(JobStore(), JobRegistry)

    def test_lifecycle(self, repo):
        job = repo.create(PAYLOAD, "case-a")
        assert job.state == "queued" and not job.terminal
        assert job.job_id in repo and len(repo) == 1

        repo.mark_running(job.job_id)
        assert repo.get(job.job_id).state == "running"

        repo.finish(job.job_id, {"ok": True}, None)
        finished = repo.get(job.job_id)
        assert finished.state == "done" and finished.terminal
        assert finished.result == {"ok": True}
        counts = repo.counts
        assert counts.submitted == 1 and counts.done == 1
        assert counts.served == 1

    def test_error_marks_failed(self, repo):
        job = repo.create(PAYLOAD, "case-b")
        repo.mark_running(job.job_id)
        repo.finish(job.job_id, None, "boom\n  traceback")
        failed = repo.get(job.job_id)
        assert failed.state == "failed"
        assert failed.error == "boom\n  traceback"
        assert repo.counts.failed == 1

    def test_abort_counts_separately(self, repo):
        job = repo.create(PAYLOAD, "case-c")
        repo.abort(job.job_id, "shutting down")
        assert repo.get(job.job_id).state == "failed"
        assert repo.counts.aborted == 1 and repo.counts.failed == 0

    def test_unknown_job(self, repo):
        with pytest.raises(UnknownJobError, match="nope"):
            repo.get("nope")
        with pytest.raises(UnknownJobError):
            repo.finish("nope", {}, None)

    def test_discard_reverses_create(self, repo):
        job = repo.create(PAYLOAD, "case-d")
        repo.discard(job.job_id)
        assert job.job_id not in repo
        assert repo.counts.submitted == 0
        repo.discard("never-there")  # idempotent

    def test_attach_records_coalescing(self, repo):
        primary = repo.create(PAYLOAD, "case-e")
        follower = repo.create(PAYLOAD, "case-e")
        attached = repo.attach(follower.job_id, primary.job_id)
        assert attached.coalesced_with == primary.job_id
        assert repo.counts.coalesced == 1
        assert repo.view(follower.job_id)["coalesced_with"] == primary.job_id

    def test_view_matches_in_memory_store_shape(self, repo):
        job = repo.create(PAYLOAD, "case-f")
        reference = JobStore().create(PAYLOAD, "case-f")
        assert set(repo.view(job.job_id)) == set(reference.view())


class TestDurability:
    def test_results_survive_reopen_byte_identically(self, store_path):
        result = {"kind": "advising_result", "zeta": 1, "alpha": [2, {"b": 3}]}
        repo = JobRepository(store_path, ttl=None)
        job = repo.create(PAYLOAD, "case-a")
        repo.mark_running(job.job_id)
        repo.finish(job.job_id, result, None)
        before = json.dumps(repo.view(job.job_id), sort_keys=True)
        repo.close()

        reopened = JobRepository(store_path, ttl=None)
        try:
            after = json.dumps(reopened.view(job.job_id), sort_keys=True)
            assert after == before
            # Key order inside the result dict round-trips too.
            replayed = reopened.get(job.job_id).result
            assert json.dumps(replayed) == json.dumps(result)
        finally:
            reopened.close()

    def test_counters_survive_reopen(self, store_path):
        repo = JobRepository(store_path, ttl=None)
        job = repo.create(PAYLOAD, "case-a")
        repo.finish(job.job_id, {"ok": True}, None)
        repo.close()
        reopened = JobRepository(store_path, ttl=None)
        try:
            counts = reopened.counts
            assert counts.submitted == 1 and counts.done == 1
        finally:
            reopened.close()

    def test_recover_requeues_running_jobs_in_order(self, store_path):
        repo = JobRepository(store_path, ttl=None)
        first = repo.create(PAYLOAD, "case-a")
        second = repo.create(PAYLOAD, "case-b")
        third = repo.create(PAYLOAD, "case-c")
        repo.mark_running(second.job_id)
        repo.finish(third.job_id, {"ok": True}, None)
        repo.close()

        reopened = JobRepository(store_path, ttl=None)
        try:
            recovered = reopened.recover()
            # Submission order, interrupted 'running' job healed to queued.
            assert recovered == [first.job_id, second.job_id]
            healed = reopened.get(second.job_id)
            assert healed.state == "queued" and healed.started_at is None
            # Settled jobs are untouched.
            assert reopened.get(third.job_id).state == "done"
        finally:
            reopened.close()

    def test_in_memory_store_recover_is_empty(self):
        store = JobStore()
        store.create(PAYLOAD, "case-a")
        assert store.recover() == []


class TestSchemaGuard:
    def test_repository_schema_mismatch_refuses_to_open(self, store_path):
        JobRepository(store_path).close()
        conn = sqlite3.connect(str(store_path))
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'repository_schema'",
            (str(REPOSITORY_SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(RepositoryStateError, match="repository_schema"):
            JobRepository(store_path)

    def test_api_schema_mismatch_refuses_to_open(self, store_path):
        JobRepository(store_path).close()
        conn = sqlite3.connect(str(store_path))
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'api_schema'",
            (str(API_SCHEMA_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(RepositoryStateError, match="api_schema"):
            JobRepository(store_path)

    def test_invalid_ttl_rejected(self, store_path):
        with pytest.raises(ValueError, match="ttl"):
            JobRepository(store_path, ttl=0)


class TestEviction:
    def test_terminal_jobs_evicted_after_ttl(self, store_path):
        clock = FakeClock()
        repo = JobRepository(store_path, ttl=10.0, clock=clock)
        try:
            done = repo.create(PAYLOAD, "case-a")
            repo.finish(done.job_id, {"ok": True}, None)
            queued = repo.create(PAYLOAD, "case-b")

            clock.advance(11.0)
            assert repo.evict() == 1
            assert done.job_id not in repo
            # Non-terminal jobs are never evicted.
            assert queued.job_id in repo
            assert repo.counts.evicted == 1
        finally:
            repo.close()

    def test_eviction_piggybacks_on_access(self, store_path):
        clock = FakeClock()
        repo = JobRepository(store_path, ttl=10.0, clock=clock)
        try:
            done = repo.create(PAYLOAD, "case-a")
            repo.finish(done.job_id, {"ok": True}, None)
            clock.advance(11.0)
            with pytest.raises(UnknownJobError, match="retention"):
                repo.get(done.job_id)
        finally:
            repo.close()

    def test_shared_eviction_contract_with_in_memory_store(self):
        clock = FakeClock()
        store = JobStore(ttl=10.0, clock=clock)
        done = store.create(PAYLOAD, "case-a")
        store.finish(done.job_id, {"ok": True}, None)
        clock.advance(11.0)
        assert store.evict() == 1
        assert done.job_id not in store
        assert store.counts.evicted == 1

    def test_ttl_none_never_evicts(self, store_path):
        clock = FakeClock()
        repo = JobRepository(store_path, ttl=None, clock=clock)
        try:
            done = repo.create(PAYLOAD, "case-a")
            repo.finish(done.job_id, {"ok": True}, None)
            clock.advance(1e9)
            assert repo.evict() == 0
            assert done.job_id in repo
        finally:
            repo.close()


class TestMultiHandle:
    def test_two_handles_share_one_store(self, store_path):
        """Two open repositories (two daemons on one host) see each other."""
        a = JobRepository(store_path, ttl=None)
        b = JobRepository(store_path, ttl=None)
        try:
            job = a.create(PAYLOAD, "case-a")
            a.finish(job.job_id, {"ok": True}, None)
            assert b.get(job.job_id).state == "done"
            assert b.counts.done == 1
        finally:
            a.close()
            b.close()
