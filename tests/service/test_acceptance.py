"""Acceptance: daemon round-trips are bit-identical to inline advising.

The ISSUE 5 criterion: for every registry case, the JSON report a
:class:`ServiceClient` gets back from the daemon must equal
``AdvisingSession.advise(...)``'s report byte for byte — under the
``simulation_scope`` and ``memory_model`` knobs too, and through the real
process-pool execution path.

The full-registry sweep shares one profile cache between the daemon and the
inline session, so each launch is simulated once and replayed once — which
doubles as a service-level regression test of cache replay fidelity.
"""

import json
import threading

import pytest

from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.service import (
    AdvisingDaemon,
    ServiceClient,
    ServiceConfig,
    ServiceHTTPServer,
)
from repro.workloads.registry import case_names

# One whole-registry sweep plus the pool fork: keep on one xdist worker.
pytestmark = pytest.mark.xdist_group("service_acceptance")


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("service-acceptance-cache"))


@pytest.fixture(scope="module")
def service(cache_dir):
    daemon = AdvisingDaemon(
        ServiceConfig(cache_dir=cache_dir), workers=2, queue_capacity=64,
        use_pool=False,
    ).start()
    server = ServiceHTTPServer(("127.0.0.1", 0), daemon)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServiceClient(server.url, timeout=30.0)
    server.shutdown()
    server.server_close()
    daemon.shutdown()


def dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=False)


def test_every_registry_case_is_bit_identical(service, cache_dir):
    requests = [
        request_for_case(case_id, arch_flag="sm_70")
        for case_id in case_names()
    ]
    service_results = service.advise_many(requests, timeout=900.0)

    session = AdvisingSession(cache=cache_dir)
    for request, service_result in zip(requests, service_results):
        inline_result = session.advise(request)
        assert service_result.ok, (
            f"{service_result.label}: {service_result.error}"
        )
        assert dumps(service_result.report.to_dict()) == dumps(
            inline_result.report.to_dict()
        ), service_result.label
        assert service_result.arch_flag == inline_result.arch_flag
        assert service_result.sample_period == inline_result.sample_period
        assert service_result.simulation_scope == inline_result.simulation_scope
        assert service_result.memory_model == inline_result.memory_model


@pytest.mark.parametrize(
    "case_id, knobs",
    [
        # Grid-limited launch: the cheapest case where whole-GPU measurement
        # genuinely diverges from single-wave extrapolation.
        ("rodinia/particlefilter:block_increase",
         {"simulation_scope": "whole_gpu", "sample_period": 32}),
        # The memory-bound application case the hierarchy model targets.
        ("ExaTENSOR:memory_transaction_reduction",
         {"memory_model": "hierarchy"}),
        # Both expensive knobs at once, pinned per request.
        ("rodinia/particlefilter:block_increase",
         {"simulation_scope": "whole_gpu", "memory_model": "hierarchy",
          "sample_period": 32}),
    ],
)
def test_knob_combinations_stay_bit_identical(service, case_id, knobs):
    request = request_for_case(case_id, arch_flag="sm_70", **knobs)
    service_result = service.advise(request, timeout=300.0)
    inline_result = AdvisingSession().advise(request)
    assert service_result.ok, service_result.error
    assert dumps(service_result.report.to_dict()) == dumps(
        inline_result.report.to_dict()
    )
    if "simulation_scope" in knobs:
        assert service_result.simulation_scope == knobs["simulation_scope"]
    if "memory_model" in knobs:
        assert service_result.memory_model == knobs["memory_model"]


def test_process_pool_path_is_bit_identical(tmp_path):
    """The real pool execution (worker processes, wire-form crossing)."""
    daemon = AdvisingDaemon(
        ServiceConfig(cache_dir=str(tmp_path / "cache")), workers=2,
        use_pool=True,
    ).start()
    try:
        requests = [
            request_for_case(case_id, arch_flag="sm_70")
            for case_id in (
                "rodinia/hotspot:strength_reduction",
                "rodinia/backprop:warp_balance",
            )
        ]
        job_ids = daemon.submit_batch([request.to_dict() for request in requests])
        import time

        deadline = time.monotonic() + 300.0
        while not all(daemon.store.get(job_id).terminal for job_id in job_ids):
            assert time.monotonic() < deadline, "pool jobs never finished"
            time.sleep(0.05)
        session = AdvisingSession()
        for request, job_id in zip(requests, job_ids):
            job = daemon.store.get(job_id)
            assert job.state == "done", job.error
            inline_report = session.advise(request).report.to_dict()
            assert dumps(job.result["report"]) == dumps(inline_report)
        # The shared on-disk cache saw both simulations.
        stats = daemon.stats()
        assert stats["cache"]["misses"] == 2
    finally:
        daemon.shutdown()
