"""Request coalescing: identical in-flight submissions share one simulation.

The races are made deterministic with the same gated ``_execute`` trick as
``test_daemon.py``: a worker is parked on a *blocker* request while the
test piles identical submissions into the queue, then the gate opens and
the counters tell us exactly how many simulations actually ran.
"""

import json
import threading

from repro.api.request import AdvisingRequest, request_for_case

from test_daemon import CASE_ID, GatedExecute, hotspot_request, wait_until


def submit_identical(daemon, count, **knobs):
    """Submit ``count`` identical requests one call at a time (as distinct
    clients would), returning the job ids in submission order."""
    return [daemon.submit(hotspot_request(**knobs).to_dict()) for _ in range(count)]


class TestCoalescing:
    def test_identical_inflight_submissions_run_once(self, make_daemon):
        daemon = make_daemon(workers=1)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = daemon.submit(hotspot_request(sample_period=2).to_dict())
        assert wait_until(lambda: daemon.store.get(blocker).state == "running")

        ids = submit_identical(daemon, 8, sample_period=4)
        gated.gate.set()
        assert wait_until(
            lambda: all(daemon.store.get(job_id).terminal for job_id in ids)
        )
        # Exactly one simulation for the whole group (plus the blocker).
        assert len(gated.calls) == 2
        stats = daemon.stats()
        assert stats["jobs_executed"] == 2
        assert stats["jobs_coalesced"] == 7
        assert stats["coalescing"] == {
            "enabled": True, "groups": 1, "attached": 7, "in_flight_keys": 0,
        }

        primary, followers = ids[0], ids[1:]
        assert daemon.store.get(primary).coalesced_with is None
        for follower in followers:
            job = daemon.store.get(follower)
            assert job.state == "done"
            assert job.coalesced_with == primary

    def test_follower_results_are_readdressed_not_shared(self, make_daemon):
        daemon = make_daemon(workers=1)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = daemon.submit(hotspot_request(sample_period=2).to_dict())
        assert wait_until(lambda: daemon.store.get(blocker).state == "running")

        def labelled(label):
            return (AdvisingRequest.builder().case(CASE_ID).arch("sm_70")
                    .sample_period(4).label(label).build())

        primary_id = daemon.submit(labelled("first").to_dict())
        follower_id = daemon.submit(labelled("second").to_dict())
        gated.gate.set()
        assert wait_until(lambda: daemon.store.get(follower_id).terminal)

        primary = daemon.store.get(primary_id)
        follower = daemon.store.get(follower_id)
        # Same simulation output: everything except the address fields.
        def body(result):
            return {k: v for k, v in result.items()
                    if k not in ("index", "label", "request")}
        assert body(primary.result) == body(follower.result)
        # ...but each job keeps its own address: label and request wire form.
        assert follower.result["label"] == "second"
        assert follower.result["request"] == follower.payload
        assert follower.result["request"]["label"] == "second"
        assert primary.result["label"] == "first"

    def test_concurrent_identical_submissions_race(self, make_daemon):
        """8 genuinely concurrent identical submits -> 1 simulation."""
        daemon = make_daemon(workers=1)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = daemon.submit(hotspot_request(sample_period=2).to_dict())
        assert wait_until(lambda: daemon.store.get(blocker).state == "running")

        payload = hotspot_request(sample_period=4).to_dict()
        ids, errors = [], []
        barrier = threading.Barrier(8)

        def submit():
            barrier.wait(5.0)
            try:
                ids.append(daemon.submit(dict(payload)))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert not errors and len(ids) == 8

        gated.gate.set()
        assert wait_until(
            lambda: all(daemon.store.get(job_id).terminal for job_id in ids)
        )
        assert len(gated.calls) == 2  # blocker + one primary for the group
        assert daemon.stats()["jobs_coalesced"] == 7
        results = [json.dumps(daemon.store.get(job_id).result, sort_keys=True)
                   for job_id in ids]
        assert len(set(results)) == 1

    def test_non_default_cache_policy_never_coalesces(self, make_daemon):
        daemon = make_daemon(workers=1)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = daemon.submit(hotspot_request(sample_period=2).to_dict())
        assert wait_until(lambda: daemon.store.get(blocker).state == "running")

        ids = submit_identical(daemon, 3, sample_period=4, cache_policy="bypass")
        gated.gate.set()
        assert wait_until(
            lambda: all(daemon.store.get(job_id).terminal for job_id in ids)
        )
        # blocker + three independent bypass runs
        assert len(gated.calls) == 4
        assert daemon.stats()["jobs_coalesced"] == 0

    def test_coalesce_false_disables_dedup(self, make_daemon):
        daemon = make_daemon(workers=1, coalesce=False)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = daemon.submit(hotspot_request(sample_period=2).to_dict())
        assert wait_until(lambda: daemon.store.get(blocker).state == "running")

        ids = submit_identical(daemon, 3, sample_period=4)
        gated.gate.set()
        assert wait_until(
            lambda: all(daemon.store.get(job_id).terminal for job_id in ids)
        )
        assert len(gated.calls) == 4
        stats = daemon.stats()
        assert stats["jobs_coalesced"] == 0
        assert stats["coalescing"]["enabled"] is False

    def test_settled_jobs_do_not_anchor_new_groups(self, make_daemon):
        """Coalescing is about *in-flight* work, not the result cache."""
        daemon = make_daemon(workers=1)
        gated = GatedExecute()
        gated.gate.set()
        daemon._execute = gated

        first = daemon.submit(hotspot_request(sample_period=4).to_dict())
        assert wait_until(lambda: daemon.store.get(first).terminal)
        second = daemon.submit(hotspot_request(sample_period=4).to_dict())
        assert wait_until(lambda: daemon.store.get(second).terminal)
        assert len(gated.calls) == 2
        assert daemon.store.get(second).coalesced_with is None

    def test_aborted_primary_aborts_followers(self, make_daemon):
        daemon = make_daemon(workers=1)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = daemon.submit(hotspot_request(sample_period=2).to_dict())
        assert wait_until(lambda: daemon.store.get(blocker).state == "running")
        ids = submit_identical(daemon, 3, sample_period=4)

        summary = daemon.shutdown(drain=False)
        for job_id in ids:
            job = daemon.store.get(job_id)
            assert job.state == "failed" and job.error is not None
        assert summary["jobs_aborted"] >= 3


class TestCoalescingOverHTTP:
    def test_dedup_is_visible_in_stats(self, make_service):
        daemon, _server, client = make_service(workers=1)
        gated = GatedExecute()
        daemon._execute = gated

        blocker = request_for_case(CASE_ID, arch_flag="sm_70", sample_period=2)
        blocker_id = client.submit(blocker)
        assert wait_until(
            lambda: daemon.store.get(blocker_id).state == "running"
        )

        request = request_for_case(CASE_ID, arch_flag="sm_70", sample_period=4)
        ids = [client.submit(request) for _ in range(8)]
        gated.gate.set()
        views = [client.wait(job_id, timeout=30.0) for job_id in ids]
        assert all(view.state == "done" for view in views)

        stats = client.stats()
        assert stats["jobs_executed"] == 2
        assert stats["jobs_coalesced"] == 7
        assert stats["coalescing"]["groups"] == 1
        # Every coalesced job serves a result addressed to itself.
        results = {view.job_id: view.result for view in views}
        assert all(results[job_id] is not None for job_id in ids)


def test_fingerprint_matches_idempotency_key():
    builder = AdvisingRequest.builder().case(CASE_ID).sample_period(8)
    assert builder.idempotency_key() == builder.build().fingerprint()
