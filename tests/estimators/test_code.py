"""Tests for the code-optimization estimators (Equations 2-5, Theorem 5.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.estimators.code import (
    combined_scoped_speedup,
    latency_hiding_speedup,
    latency_hiding_upper_bound,
    scoped_latency_hiding_speedup,
    stall_elimination_speedup,
)


class TestStallElimination:
    def test_equation2_basic(self):
        # T=100, M=20 -> 100 / 80 = 1.25x
        assert stall_elimination_speedup(100, 20) == pytest.approx(1.25)

    def test_no_match_means_no_speedup(self):
        assert stall_elimination_speedup(100, 0) == 1.0

    def test_empty_profile(self):
        assert stall_elimination_speedup(0, 0) == 1.0

    def test_matching_everything_is_guarded(self):
        assert stall_elimination_speedup(100, 100) > 10.0

    @given(total=st.integers(1, 10_000), matched=st.integers(0, 10_000))
    @settings(max_examples=200, deadline=None)
    def test_speedup_at_least_one_and_monotone(self, total, matched):
        speedup = stall_elimination_speedup(total, matched)
        assert speedup >= 1.0
        smaller = stall_elimination_speedup(total, matched // 2)
        assert speedup >= smaller - 1e-9


class TestLatencyHiding:
    def test_equation4_limited_by_active_samples(self):
        # T=100, A=10, ML=50: only 10 samples of work can move into stalls.
        assert latency_hiding_speedup(100, 10, 50) == pytest.approx(100 / 90)

    def test_equation4_limited_by_matched_latency(self):
        assert latency_hiding_speedup(100, 60, 20) == pytest.approx(100 / 80)

    @given(
        active=st.integers(0, 5_000),
        latency=st.integers(0, 5_000),
        matched_fraction=st.floats(0.0, 1.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_theorem_5_1_upper_bound(self, active, latency, matched_fraction):
        """Theorem 5.1: the latency-hiding speedup never exceeds 2x."""
        total = active + latency
        matched = matched_fraction * latency
        speedup = latency_hiding_speedup(total, active, matched)
        assert 1.0 <= speedup <= latency_hiding_upper_bound() + 1e-9

    def test_upper_bound_is_two(self):
        assert latency_hiding_upper_bound() == 2.0
        # The bound is reached when A == ML == L == T/2.
        assert latency_hiding_speedup(100, 50, 50) == pytest.approx(2.0)


class TestScopedLatencyHiding:
    def test_equation5_scope_limits_benefit(self):
        # Matched latency 40, but the loop only has 5 active samples to move.
        scoped = scoped_latency_hiding_speedup(100, [5], 40)
        unscoped = latency_hiding_speedup(100, 50, 40)
        assert scoped == pytest.approx(100 / 95)
        assert scoped < unscoped

    def test_equation5_nested_scopes_contribute_active_samples(self):
        nested = scoped_latency_hiding_speedup(100, [5, 10, 10], 40)
        assert nested == pytest.approx(100 / 75)

    def test_combined_scopes_sum_hidden_latency(self):
        speedup = combined_scoped_speedup(200, {
            "loop_a": (10, 30),   # hides 10
            "loop_b": (25, 15),   # hides 15
        })
        assert speedup == pytest.approx(200 / 175)

    def test_combined_scopes_empty(self):
        assert combined_scoped_speedup(100, {}) == 1.0

    @given(
        total=st.integers(1, 10_000),
        scopes=st.lists(
            st.tuples(st.floats(0, 1_000), st.floats(0, 1_000)), max_size=6
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_combined_speedup_bounded(self, total, scopes):
        per_scope = {index: pair for index, pair in enumerate(scopes)}
        speedup = combined_scoped_speedup(total, per_scope)
        assert speedup >= 1.0
