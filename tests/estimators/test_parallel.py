"""Tests for the parallel estimator (Equations 6-10)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machine import VoltaV100
from repro.estimators.parallel import ParallelEstimator
from repro.sampling.sample import KernelProfile, LaunchConfig, LaunchStatistics


def make_profile(grid_blocks, threads_per_block, warps_per_scheduler, issue_ratio,
                 total=1000):
    statistics = LaunchStatistics(
        kernel="k",
        config=LaunchConfig(grid_blocks, threads_per_block),
        registers_per_thread=32,
        blocks_per_sm=max(1, int(warps_per_scheduler * 4 * 32 // max(threads_per_block, 1))),
        warps_per_sm=int(warps_per_scheduler * 4),
        warps_per_scheduler=warps_per_scheduler,
        occupancy=warps_per_scheduler / 16,
        occupancy_limiter="warps",
        waves=1.0,
        wave_cycles=10_000,
        kernel_cycles=10_000,
        sample_period=8,
    )
    profile = KernelProfile(kernel="k", statistics=statistics)
    active = int(total * issue_ratio)
    profile.record_issue("k", 0, active)
    from repro.sampling.stall_reasons import StallReason

    profile.record_stall("k", 16, StallReason.MEMORY_DEPENDENCY, total - active)
    return profile


@pytest.fixture(scope="module")
def estimator():
    return ParallelEstimator(VoltaV100)


class TestIssueRateModel:
    def test_equations_8_and_9_invert_each_other(self, estimator):
        per_warp = estimator.per_warp_ready_rate(0.4, 8)
        assert estimator.scheduler_issue_rate(per_warp, 8) == pytest.approx(0.4, rel=1e-6)

    def test_more_warps_increase_issue_rate(self, estimator):
        per_warp = 0.05
        assert (estimator.scheduler_issue_rate(per_warp, 16)
                > estimator.scheduler_issue_rate(per_warp, 4))

    @given(issue=st.floats(0.01, 0.99), warps=st.floats(1, 16))
    @settings(max_examples=200, deadline=None)
    def test_rates_stay_in_unit_interval(self, issue, warps):
        estimator = ParallelEstimator(VoltaV100)
        per_warp = estimator.per_warp_ready_rate(issue, warps)
        assert 0.0 <= per_warp <= 1.0
        assert 0.0 <= estimator.scheduler_issue_rate(per_warp, warps) <= 1.0


class TestParallelEstimate:
    def test_block_increase_for_grid_limited_kernel(self, estimator):
        # 16 blocks on an 80-SM GPU; splitting the work across 80 blocks.
        profile = make_profile(16, 1024, warps_per_scheduler=8, issue_ratio=0.3)
        estimate = estimator.estimate(profile, LaunchConfig(80, 1024),
                                      total_work_factor=1.0)
        assert estimate.speedup > 1.5

    def test_reshaping_blocks_keeps_total_threads(self, estimator):
        profile = make_profile(16, 1024, warps_per_scheduler=8, issue_ratio=0.3)
        estimate = estimator.estimate(profile, LaunchConfig(32, 512))
        assert estimate.speedup > 1.0
        assert estimate.cw < 1.0  # fewer warps per scheduler

    def test_thread_increase_for_tiny_blocks(self, estimator):
        # 16-thread blocks pad every warp with idle lanes (gaussian Fan2).
        profile = make_profile(16384, 16, warps_per_scheduler=8, issue_ratio=0.25)
        estimate = estimator.estimate(profile, LaunchConfig(1024, 256))
        assert estimate.speedup > 1.5

    def test_equation10_identity_holds(self, estimator):
        profile = make_profile(40, 512, warps_per_scheduler=4, issue_ratio=0.3)
        estimate = estimator.estimate(profile, LaunchConfig(80, 512),
                                      total_work_factor=1.0)
        assert estimate.speedup == pytest.approx((1.0 / estimate.cw) * estimate.ci * estimate.f)

    def test_describe_mentions_configuration(self, estimator):
        profile = make_profile(40, 512, warps_per_scheduler=4, issue_ratio=0.3)
        estimate = estimator.estimate(profile, LaunchConfig(80, 512))
        assert "blocks=80" in estimate.describe()

    def test_no_change_means_no_speedup(self, estimator):
        profile = make_profile(8000, 256, warps_per_scheduler=16, issue_ratio=0.5)
        estimate = estimator.estimate(profile, LaunchConfig(8000, 256))
        assert estimate.speedup == pytest.approx(1.0, abs=0.05)
        assert estimate.cw == pytest.approx(1.0)
        assert estimate.ci == pytest.approx(1.0)
