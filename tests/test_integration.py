"""End-to-end integration tests reproducing the paper's headline behaviours."""

import pytest

from repro.advisor.advisor import GPA
from repro.evaluation.table3 import evaluate_case
from repro.workloads.registry import case_by_name


@pytest.fixture(scope="module")
def advisor():
    return GPA(sample_period=8)


def test_hotspot_listing1_strength_reduction(advisor):
    """Listing 1: hotspot's double-constant multiply is traced to conversions
    and the Strength Reduction fix yields a real speedup."""
    row = evaluate_case(case_by_name("rodinia/hotspot:strength_reduction"))
    assert row.achieved_speedup > 1.05
    assert row.optimizer_rank is not None and row.optimizer_rank <= 5


def test_btree_listing2_code_reordering(advisor):
    """Listing 2: b+tree's short load-to-use distance is matched by Code
    Reordering and widening the distance speeds the kernel up."""
    case = case_by_name("rodinia/b+tree:code_reorder")
    setup = case.build_baseline()
    report = advisor.advise(setup.cubin, setup.kernel, setup.config, setup.workload)
    advice = report.advice_for("GPUCodeReorderingOptimizer")
    assert advice.applicable and advice.matched_samples > 0
    row = evaluate_case(case)
    # Reordering only moves a handful of independent operations, so the real
    # gain is small (the paper reports 1.15x; our simulated warps already
    # hide most of the latency) — but it must not be a slowdown.
    assert row.achieved_speedup >= 1.0


def test_exatensor_case_study_sequence(advisor):
    """Section 7.1: strength reduction first, then memory transaction
    reduction on the updated code — both steps give real speedups."""
    first = evaluate_case(case_by_name("ExaTENSOR:strength_reduction"))
    second = evaluate_case(case_by_name("ExaTENSOR:memory_transaction_reduction"))
    # Each step is at worst neutral and the transaction-reduction step (which
    # relieves the memory-throttle bottleneck) is a clear win.
    assert first.achieved_speedup >= 0.98
    assert second.achieved_speedup > 1.05
    assert first.optimizer_rank is not None
    assert second.optimizer_rank is not None


def test_every_advice_report_is_renderable(advisor):
    for name in ("rodinia/nw:warp_balance", "PeleC:block_increase",
                 "Minimod:fast_math"):
        case = case_by_name(name)
        setup = case.build_baseline()
        report = advisor.advise(setup.cubin, setup.kernel, setup.config, setup.workload)
        text = GPA.render(report)
        assert case.kernel in text
        assert "estimate speedup" in text


def test_speedups_follow_the_paper_shape():
    """Every applied optimization helps (>= 1x) and the biggest win is the
    parallel (thread increase) case, as in Table 3."""
    names = [
        "rodinia/gaussian:thread_increase",
        "rodinia/backprop:warp_balance",
        "rodinia/hotspot:strength_reduction",
        "rodinia/particlefilter:block_increase",
    ]
    rows = {name: evaluate_case(case_by_name(name)) for name in names}
    for row in rows.values():
        assert row.achieved_speedup >= 0.98
    gaussian = rows["rodinia/gaussian:thread_increase"]
    assert gaussian.achieved_speedup == max(r.achieved_speedup for r in rows.values())
