"""Object vs. vector core: byte-identical wire-form results, every case.

The tentpole contract of the vector backend is *bit identity*: for every
registry benchmark, under every simulation scope and memory model, the
serialized :class:`~repro.api.result.AdvisingResult` must be byte-for-byte
identical between ``simulator_backend="object"`` and ``"vector"`` (only the
wall-clock ``duration`` field, which no simulation output feeds, is zeroed
before comparison).

Every single-wave combination runs on all 26 registry cases.  The whole-GPU
scope simulates every SM of every dispatch wave, so its full sweep takes
minutes: a representative subset runs by default and the complete matrix is
enabled with ``REPRO_FULL_EQUIVALENCE=1`` (CI's nightly sweep sets it).
"""

import json
import os

import pytest

from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.workloads.registry import case_names

pytest.importorskip("numpy")

pytestmark = pytest.mark.xdist_group("backend_equivalence")

ALL_CASES = case_names()
#: Always-on whole-GPU subset: the three smallest grids (16/40/50 blocks)
#: — grid-limited launches that still exercise the tail-wave and cross-SM
#: paths, from distinct suites, without the minutes-long full-grid walks
#: the nightly sweep covers.
WHOLE_GPU_CASES = [
    "PeleC:block_increase",
    "rodinia/particlefilter:block_increase",
    "rodinia/streamcluster:block_increase",
]
FULL_MATRIX = bool(os.environ.get("REPRO_FULL_EQUIVALENCE"))

_SESSIONS = {}


def session_for(backend, scope, memory_model):
    key = (backend, scope, memory_model)
    session = _SESSIONS.get(key)
    if session is None:
        session = AdvisingSession(
            sample_period=8, simulation_scope=scope, memory_model=memory_model,
            simulator_backend=backend,
        )
        _SESSIONS[key] = session
    return session


def wire_form(backend, scope, memory_model, case_id):
    result = session_for(backend, scope, memory_model).advise(
        request_for_case(case_id)
    )
    payload = result.to_dict()
    assert not payload.get("error"), payload.get("error")
    payload["duration"] = 0.0
    return json.dumps(payload, sort_keys=True)


def assert_backends_agree(scope, memory_model, case_id):
    reference = wire_form("object", scope, memory_model, case_id)
    vectorized = wire_form("vector", scope, memory_model, case_id)
    assert vectorized == reference


@pytest.mark.parametrize("case_id", ALL_CASES)
@pytest.mark.parametrize("memory_model", ["flat", "hierarchy"])
class TestSingleWaveEquivalence:
    def test_wire_identical(self, memory_model, case_id):
        assert_backends_agree("single_wave", memory_model, case_id)


@pytest.mark.parametrize(
    "case_id", ALL_CASES if FULL_MATRIX else WHOLE_GPU_CASES
)
@pytest.mark.parametrize("memory_model", ["flat", "hierarchy"])
class TestWholeGpuEquivalence:
    def test_wire_identical(self, memory_model, case_id):
        assert_backends_agree("whole_gpu", memory_model, case_id)


class TestObservationNeutrality:
    """Sampling must observe, never perturb — on the vector core too."""

    @pytest.mark.parametrize("memory_model", ["flat", "hierarchy"])
    def test_kernel_cycles_invariant_across_periods(self, memory_model):
        case_id = ALL_CASES[0]
        facts = []
        for period in (8, 32, 128):
            session = AdvisingSession(
                sample_period=period, memory_model=memory_model,
                simulator_backend="vector",
            )
            profiled = session.profile(request_for_case(case_id))
            statistics = profiled.profile.statistics
            memory = (
                statistics.memory.to_dict() if statistics.memory is not None else None
            )
            facts.append(
                (statistics.kernel_cycles, statistics.wave_cycles, memory)
            )
        assert facts[0] == facts[1] == facts[2]
