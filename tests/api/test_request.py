"""Tests for AdvisingRequest: builder fluency, validation, serialization."""

import json

import pytest

from repro.api.request import AdvisingRequest, RequestBuilder, request_for_case
from repro.api.schema import (
    API_SCHEMA_VERSION,
    ApiSchemaError,
    ApiSerializationError,
    ApiValidationError,
)
from repro.sampling.sample import LaunchConfig
from repro.sampling.workload import WorkloadSpec


class TestBuilder:
    def test_fluent_case_request(self):
        request = (
            AdvisingRequest.builder()
            .case("rodinia/hotspot:strength_reduction")
            .arch("sm_80")
            .sample_period(16)
            .optimizers("GPULoopUnrollingOptimizer")
            .bypass_cache()
            .label("hotspot@ampere")
            .build()
        )
        assert request.source == "case"
        assert request.case_id == "rodinia/hotspot:strength_reduction"
        assert request.arch_flag == "sm_80"
        assert request.sample_period == 16
        assert request.optimizers == ("GPULoopUnrollingOptimizer",)
        assert request.cache_policy == "bypass"
        assert request.describe() == "hotspot@ampere"

    def test_optimized_variant(self):
        request = AdvisingRequest.builder().case("a/b:c").optimized().build()
        assert request.variant == "optimized"
        assert request.describe() == "a/b:c@optimized"

    def test_binary_request(self, toy_cubin, toy_config, toy_workload):
        request = (
            AdvisingRequest.builder()
            .binary(toy_cubin, "toy_kernel", toy_config, toy_workload)
            .build()
        )
        assert request.source == "binary"
        assert request.describe() == "toy_kernel"

    def test_two_sources_conflict(self, toy_cubin, toy_config):
        builder = RequestBuilder().case("a/b:c")
        with pytest.raises(ApiValidationError):
            builder.binary(toy_cubin, "toy_kernel", toy_config)

    def test_build_without_source_is_rejected(self):
        with pytest.raises(ApiValidationError):
            RequestBuilder().arch("sm_70").build()


class TestValidation:
    def test_case_needs_case_id(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case")

    def test_binary_needs_cubin_kernel_config(self, toy_cubin):
        with pytest.raises(ApiValidationError, match="kernel"):
            AdvisingRequest(source="binary", cubin=toy_cubin)

    def test_profile_needs_cubin(self, toy_profiled):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="profile", profile=toy_profiled.profile)

    def test_unknown_source(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="telepathy")

    def test_unknown_variant(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case", case_id="a/b:c", variant="fastest")

    def test_unknown_cache_policy(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case", case_id="a/b:c", cache_policy="lru")

    def test_nonpositive_sample_period(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case", case_id="a/b:c", sample_period=0)

    def test_unknown_arch_flag(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case", case_id="a/b:c", arch_flag="sm_1")

    def test_empty_optimizer_selection(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case", case_id="a/b:c", optimizers=())

    def test_unknown_simulation_scope(self):
        with pytest.raises(ApiValidationError):
            AdvisingRequest(source="case", case_id="a/b:c", simulation_scope="per_warp")

    def test_valid_simulation_scopes(self):
        for scope in (None, "single_wave", "whole_gpu"):
            request = AdvisingRequest(
                source="case", case_id="a/b:c", simulation_scope=scope
            )
            assert request.simulation_scope == scope


class TestSerialization:
    def test_case_request_round_trip_is_fixed_point(self):
        request = (
            AdvisingRequest.builder()
            .case("rodinia/bfs:loop_unrolling", variant="optimized")
            .arch("sm_75")
            .sample_period(4)
            .refresh_cache()
            .build()
        )
        dumped = request.to_dict()
        assert dumped["schema_version"] == API_SCHEMA_VERSION
        reloaded = AdvisingRequest.from_dict(json.loads(json.dumps(dumped)))
        assert reloaded == request
        assert reloaded.to_dict() == dumped

    def test_binary_request_round_trip(self, toy_cubin, toy_config):
        workload = WorkloadSpec(
            name="toy", loop_trip_counts={12: 9}, uncoalesced_lines={13}
        )
        request = (
            AdvisingRequest.builder()
            .binary(toy_cubin, "toy_kernel", toy_config, workload)
            .build()
        )
        dumped = request.to_dict()
        reloaded = AdvisingRequest.from_dict(json.loads(json.dumps(dumped)))
        assert reloaded.to_dict() == dumped
        assert reloaded.kernel == "toy_kernel"
        assert reloaded.config == toy_config
        assert reloaded.workload.loop_trip_counts == {12: 9}
        assert reloaded.cubin.function("toy_kernel").instructions

    def test_callable_workload_cannot_serialize(self, toy_cubin, toy_config):
        workload = WorkloadSpec(loop_trip_counts={12: lambda warp, n: warp % 7})
        request = (
            AdvisingRequest.builder()
            .binary(toy_cubin, "toy_kernel", toy_config, workload)
            .build()
        )
        assert not request.is_serializable()
        with pytest.raises(ApiSerializationError):
            request.to_dict()

    def test_simulation_scope_round_trips(self):
        request = (
            AdvisingRequest.builder()
            .case("rodinia/heartwall:loop_unrolling")
            .whole_gpu()
            .build()
        )
        assert request.simulation_scope == "whole_gpu"
        dumped = request.to_dict()
        assert dumped["simulation_scope"] == "whole_gpu"
        reloaded = AdvisingRequest.from_dict(json.loads(json.dumps(dumped)))
        assert reloaded == request
        assert reloaded.to_dict() == dumped

    def test_absent_simulation_scope_defaults_to_session(self):
        payload = AdvisingRequest.builder().case("a/b:c").build().to_dict()
        assert payload["simulation_scope"] is None
        assert AdvisingRequest.from_dict(payload).simulation_scope is None

    def test_wrong_schema_version_is_rejected(self):
        request = AdvisingRequest.builder().case("a/b:c").build()
        payload = request.to_dict()
        payload["schema_version"] = API_SCHEMA_VERSION + 1
        with pytest.raises(ApiSchemaError):
            AdvisingRequest.from_dict(payload)

    def test_wrong_kind_is_rejected(self):
        payload = AdvisingRequest.builder().case("a/b:c").build().to_dict()
        payload["kind"] = "advising_result"
        with pytest.raises(ApiSchemaError):
            AdvisingRequest.from_dict(payload)


class TestRequestForCase:
    def test_registry_id_becomes_case_source(self):
        request = request_for_case("rodinia/hotspot:strength_reduction")
        assert request.source == "case"
        assert request.label == "rodinia/hotspot:strength_reduction"

    def test_registry_case_object_becomes_case_source(self):
        from repro.workloads.registry import case_by_name

        case = case_by_name("rodinia/hotspot:strength_reduction")
        request = request_for_case(case, "optimized", arch_flag="sm_80")
        assert request.source == "case"
        assert request.variant == "optimized"
        assert request.arch_flag == "sm_80"

    def test_ad_hoc_case_is_materialized_to_binary(self):
        import dataclasses

        from repro.workloads.registry import case_by_name

        case = case_by_name("rodinia/hotspot:strength_reduction")
        clone = dataclasses.replace(case, name="custom/clone")
        request = request_for_case(clone)
        assert request.source == "binary"
        assert request.label == "custom/clone:strength_reduction"
        assert request.cubin is not None

    def test_launch_config_round_trip(self):
        config = LaunchConfig(3, 64, shared_memory_bytes=1024)
        assert LaunchConfig.from_dict(config.to_dict()) == config
