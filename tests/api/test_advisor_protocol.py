"""The shared Advisor protocol: one calling surface, two transports."""

import threading

import pytest

from repro.api.advisor import Advisor
from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.service import (
    AdvisingDaemon,
    ServiceClient,
    ServiceConfig,
    ServiceHTTPServer,
)

CASE_ID = "rodinia/hotspot:strength_reduction"


@pytest.fixture
def make_service():
    """A running daemon + client, torn down afterwards (local copy of the
    tests/service fixture: conftests do not cross test packages)."""
    made = []

    def make():
        daemon = AdvisingDaemon(ServiceConfig(), workers=2, use_pool=False)
        daemon.start()
        server = ServiceHTTPServer(("127.0.0.1", 0), daemon)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        made.append((daemon, server))
        return ServiceClient(server.url, timeout=10.0)

    yield make
    for daemon, server in made:
        server.shutdown()
        server.server_close()
        daemon.shutdown(drain=False)


class TestProtocol:
    def test_inline_session_is_an_advisor(self):
        assert isinstance(AdvisingSession(), Advisor)

    def test_service_client_is_an_advisor(self):
        # Structural check only: no daemon required.
        assert isinstance(ServiceClient("http://127.0.0.1:1"), Advisor)

    def test_arbitrary_objects_are_not(self):
        class Half:
            def advise(self, request):
                return None

        assert not isinstance(Half(), Advisor)
        assert not isinstance(object(), Advisor)

    def test_exported_from_the_package_roots(self):
        import repro
        import repro.api

        assert repro.Advisor is Advisor
        assert repro.api.Advisor is Advisor


class TestPolymorphicUse:
    def test_one_function_drives_either_transport(self, make_service):
        """The protocol's point: code written against Advisor runs unchanged
        against the inline session or a remote daemon."""

        def top_optimizer(advisor: Advisor, request):
            result = advisor.advise(request)
            assert result.ok
            return result.report.advice[0].optimizer

        request = request_for_case(CASE_ID, arch_flag="sm_70")
        inline = top_optimizer(AdvisingSession(), request)
        remote = top_optimizer(make_service(), request)
        assert inline == remote

    def test_lint_matches_across_transports(self, make_service):
        request = request_for_case(CASE_ID, arch_flag="sm_70")
        inline = AdvisingSession().lint(request)
        remote = make_service().lint(request)
        assert remote.to_json() == inline.to_json()

    def test_stream_matches_across_transports(self, make_service):
        requests = [
            request_for_case(CASE_ID, arch_flag="sm_70", sample_period=period)
            for period in (4, 8)
        ]
        inline = {r.label: r.report.to_dict()
                  for r in AdvisingSession().stream(requests)}
        remote = {r.label: r.report.to_dict()
                  for r in make_service().stream(requests, timeout=120.0)}
        assert remote == inline
