"""The round-trip guarantee of the acceptance criteria.

For every benchmark case in the registry, ``AdvisingResult.from_dict(
result.to_dict())`` must reproduce an equal result: same ranked advice,
same speedups, same blame tree — and ``dump -> load -> dump`` must be a
fixed point (the reloaded result re-dumps byte-identically).
"""

import json

import pytest

from repro.api.request import request_for_case
from repro.api.result import AdvisingResult
from repro.api.session import AdvisingSession
from repro.workloads.registry import case_names


@pytest.fixture(scope="module")
def registry_results():
    """One advising result per registry case, computed once."""
    session = AdvisingSession(sample_period=8)
    requests = [request_for_case(case_id) for case_id in case_names()]
    return {result.label: result for result in session.advise_many(requests)}


@pytest.mark.parametrize("case_id", case_names())
def test_result_round_trip_reproduces_equal_result(case_id, registry_results):
    result = registry_results[case_id]
    assert result.ok, result.error

    dumped = result.to_dict()
    reloaded = AdvisingResult.from_dict(json.loads(json.dumps(dumped)))

    # Fixed point: dump -> load -> dump changes nothing, byte for byte.
    assert reloaded.to_dict() == dumped
    assert json.dumps(reloaded.to_dict(), sort_keys=True) == json.dumps(
        dumped, sort_keys=True
    )

    # Same ranked advice and speedups.
    original = result.report
    twin = reloaded.report
    assert [item.optimizer for item in twin.advice] == [
        item.optimizer for item in original.advice
    ]
    assert [item.estimated_speedup for item in twin.advice] == [
        item.estimated_speedup for item in original.advice
    ]
    assert [item.applicable for item in twin.advice] == [
        item.applicable for item in original.advice
    ]

    # Same blame tree: every attribution record, the per-source aggregate,
    # the pruning statistics and the (detached) dependency graph topology.
    assert [edge.to_dict() for edge in twin.blame.edges] == [
        edge.to_dict() for edge in original.blame.edges
    ]
    assert twin.blame.blamed == original.blame.blamed
    assert twin.blame.pruning == original.blame.pruning
    assert twin.blame.graph.to_dict() == original.blame.graph.to_dict()

    # Same profile, sample for sample.
    assert twin.profile.to_dict() == original.profile.to_dict()
    assert twin.profile.stalls_by_reason() == original.profile.stalls_by_reason()
