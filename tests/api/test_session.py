"""Tests for AdvisingSession: execution modes, knobs, error capture."""

import json

import pytest

from repro.api.request import AdvisingRequest, request_for_case
from repro.api.result import AdvisingError, AdvisingResult, dump_jsonl, load_jsonl
from repro.api.schema import ApiValidationError
from repro.api.session import AdvisingSession
from repro.pipeline.cache import ProfileCache

SUBSET = ["rodinia/backprop:warp_balance", "rodinia/gaussian:thread_increase"]


@pytest.fixture(scope="module")
def session():
    return AdvisingSession(sample_period=8)


class TestAdvise:
    def test_case_request(self, session):
        result = session.advise(request_for_case(SUBSET[0]))
        assert result.ok
        assert result.label == SUBSET[0]
        assert result.arch_flag == "sm_70"
        assert result.sample_period == 8
        assert result.report.advice
        assert result.duration > 0.0

    def test_matches_legacy_gpa_facade(self, session):
        from repro.advisor.advisor import GPA
        from repro.workloads.registry import case_by_name

        case = case_by_name(SUBSET[0])
        setup = case.build_baseline()
        with pytest.deprecated_call():
            legacy = GPA(sample_period=8).advise(
                setup.cubin, setup.kernel, setup.config, setup.workload
            )
        modern = session.report_for(request_for_case(SUBSET[0]))
        assert legacy.to_dict() == modern.to_dict()

    def test_binary_request(self, session, toy_cubin, toy_config, toy_workload):
        request = (
            AdvisingRequest.builder()
            .binary(toy_cubin, "toy_kernel", toy_config, toy_workload)
            .build()
        )
        result = session.advise(request)
        assert result.ok
        assert result.report.kernel == "toy_kernel"

    def test_profile_request_runs_analysis_only(self, session, toy_profiled, toy_cubin):
        request = (
            AdvisingRequest.builder()
            .profile(toy_profiled.profile, toy_cubin)
            .build()
        )
        result = session.advise(request)
        assert result.ok
        assert result.report.profile.total_samples == toy_profiled.profile.total_samples

    def test_unknown_case_is_captured_not_raised(self, session):
        result = session.advise(request_for_case("no/such:case"))
        assert not result.ok
        assert "KeyError" in result.error
        with pytest.raises(AdvisingError):
            result.require_report()

    def test_report_for_raises_on_failure(self, session):
        with pytest.raises(AdvisingError, match="no/such:case"):
            session.report_for(request_for_case("no/such:case"))

    def test_profile_source_cannot_be_profiled(self, session, toy_profiled, toy_cubin):
        request = AdvisingRequest.builder().profile(toy_profiled.profile, toy_cubin).build()
        with pytest.raises(ApiValidationError):
            session.profile(request)

    def test_arch_override_changes_statistics(self, session):
        volta = session.report_for(request_for_case(SUBSET[1]))
        turing = session.report_for(request_for_case(SUBSET[1], arch_flag="sm_75"))
        assert volta.profile.statistics.to_dict() != turing.profile.statistics.to_dict()

    def test_optimizer_selection_narrows_the_report(self, session):
        request = (
            AdvisingRequest.builder()
            .case(SUBSET[0])
            .optimizers("GPUWarpBalanceOptimizer", "GPUFastMathOptimizer")
            .build()
        )
        report = session.report_for(request)
        assert [item.optimizer for item in report.advice] in (
            ["GPUWarpBalanceOptimizer", "GPUFastMathOptimizer"],
            ["GPUFastMathOptimizer", "GPUWarpBalanceOptimizer"],
        )

    def test_unknown_optimizer_is_captured(self, session):
        request = (
            AdvisingRequest.builder().case(SUBSET[0]).optimizers("NoSuchOptimizer").build()
        )
        result = session.advise(request)
        assert not result.ok
        assert "NoSuchOptimizer" in result.error

    def test_per_request_sample_period(self, session):
        fine = session.report_for(request_for_case(SUBSET[0], sample_period=4))
        assert fine.profile.statistics.sample_period == 4
        coarse = session.report_for(request_for_case(SUBSET[0]))
        assert coarse.profile.statistics.sample_period == 8
        assert fine.profile.total_samples > coarse.profile.total_samples


class TestSimulationScope:
    """Session- and request-level simulation_scope plumbing.

    The expensive whole-GPU engine itself is covered in
    ``tests/sampling/test_gpu.py`` and the acceptance test; these tests
    exercise stage selection, result stamping and pool-config propagation
    without running multi-wave registry simulations.
    """

    def test_session_rejects_unknown_scope(self):
        with pytest.raises(ApiValidationError):
            AdvisingSession(simulation_scope="per_warp")

    def test_default_scope_is_single_wave(self, session):
        assert session.simulation_scope == "single_wave"
        result = session.advise(request_for_case(SUBSET[0]))
        assert result.simulation_scope == "single_wave"
        assert result.report.profile.statistics.simulation_scope == "single_wave"

    def test_request_scope_overrides_session(self, session):
        request = request_for_case(SUBSET[0], simulation_scope="whole_gpu")
        stage = session._profile_stage_for(request)
        assert stage is not session.profile_stage
        assert stage.simulation_scope == "whole_gpu"
        # The dedicated stage is memoized per (period, cached, scope).
        assert session._profile_stage_for(request) is stage

    def test_whole_gpu_session_stamps_results(self):
        whole = AdvisingSession(sample_period=8, simulation_scope="whole_gpu")
        assert whole.profile_stage.simulation_scope == "whole_gpu"
        result = whole.advise(request_for_case("no/such:case"))
        assert result.simulation_scope == "whole_gpu"

    def test_pool_config_carries_scope(self):
        whole = AdvisingSession(sample_period=8, jobs=2, simulation_scope="whole_gpu")
        config = whole._pool_config()
        assert config["simulation_scope"] == "whole_gpu"

    def test_profile_source_reports_the_profiles_recorded_scope(
        self, session, toy_cubin, toy_workload
    ):
        from repro.sampling.profiler import Profiler
        from repro.sampling.sample import LaunchConfig

        # A tiny grid-limited launch keeps the whole-GPU collection cheap.
        profiled = Profiler(sample_period=32, simulation_scope="whole_gpu").profile(
            toy_cubin, "toy_kernel", LaunchConfig(2, 64), toy_workload
        )
        request = (
            AdvisingRequest.builder().profile(profiled.profile, toy_cubin).build()
        )
        result = session.advise(request)  # session default is single_wave
        assert result.ok
        # Nothing was simulated: the result reports the scope the profile
        # was actually collected with, not the session default.
        assert result.simulation_scope == "whole_gpu"


class TestCachePolicies:
    def test_default_policy_populates_and_replays(self, tmp_path):
        session = AdvisingSession(sample_period=8, cache=str(tmp_path))
        cold = session.report_for(request_for_case(SUBSET[0]))
        assert session.cache.stores > 0
        warm_session = AdvisingSession(sample_period=8, cache=str(tmp_path))
        warm = warm_session.report_for(request_for_case(SUBSET[0]))
        assert warm_session.cache.hits > 0
        assert cold.to_dict() == warm.to_dict()

    def test_bypass_policy_never_touches_the_cache(self, tmp_path):
        session = AdvisingSession(sample_period=8, cache=str(tmp_path))
        session.report_for(request_for_case(SUBSET[0], cache_policy="bypass"))
        assert len(ProfileCache(tmp_path)) == 0

    def test_refresh_policy_resimulates_and_rewrites(self, tmp_path):
        session = AdvisingSession(sample_period=8, cache=str(tmp_path))
        session.report_for(request_for_case(SUBSET[0]))
        stores_before = session.cache.stores
        session.report_for(request_for_case(SUBSET[0], cache_policy="refresh"))
        assert session.cache.stores == stores_before + 1


class TestBatchModes:
    def test_advise_many_preserves_order(self, session):
        results = session.advise_many([request_for_case(name) for name in SUBSET])
        assert [result.label for result in results] == SUBSET
        assert [result.index for result in results] == [0, 1]

    def test_pool_stream_yields_every_result(self):
        pooled = AdvisingSession(sample_period=8, jobs=2)
        results = list(pooled.stream([request_for_case(name) for name in SUBSET]))
        assert sorted(result.index for result in results) == [0, 1]
        assert all(result.ok for result in results)

    def test_pool_results_equal_inline_results(self, session):
        requests = [request_for_case(name) for name in SUBSET]
        inline = session.advise_many(requests)
        pooled = AdvisingSession(sample_period=8, jobs=2).advise_many(requests)
        for left, right in zip(inline, pooled):
            assert left.to_dict()["report"] == right.to_dict()["report"]

    def test_pool_error_capture(self):
        pooled = AdvisingSession(sample_period=8, jobs=2)
        results = pooled.advise_many(
            [request_for_case("no/such:case"), request_for_case(SUBSET[0])]
        )
        assert not results[0].ok and "KeyError" in results[0].error
        assert results[1].ok

    def test_progress_events_come_in_adjacent_pairs(self):
        events = []
        pooled = AdvisingSession(sample_period=8, jobs=2)
        pooled.advise_many(
            [request_for_case(name) for name in SUBSET], progress=events.append
        )
        assert len(events) == 2 * len(SUBSET)
        for start, finish in zip(events[::2], events[1::2]):
            assert start.status == "start"
            assert finish.status in ("done", "error")
            assert start.step == finish.step
            assert start.index == finish.index
            assert start.total == finish.total == len(SUBSET)

    def test_unserializable_request_falls_back_inline(self, toy_cubin, toy_config):
        from repro.sampling.workload import WorkloadSpec

        workload = WorkloadSpec(loop_trip_counts={12: lambda warp, n: 4})
        requests = [
            AdvisingRequest.builder()
            .binary(toy_cubin, "toy_kernel", toy_config, workload)
            .build(),
            request_for_case(SUBSET[0]),
        ]
        pooled = AdvisingSession(sample_period=8, jobs=2)
        results = pooled.advise_many(requests)
        assert all(result.ok for result in results)

    def test_custom_optimizer_instances_run_inline(self):
        from repro.optimizers.registry import default_optimizers

        session = AdvisingSession(
            sample_period=8, jobs=2, optimizers=default_optimizers()[:3]
        )
        assert session._pool_config() is None
        results = session.advise_many([request_for_case(name) for name in SUBSET])
        assert all(result.ok for result in results)
        assert all(len(result.report.advice) == 3 for result in results)


class TestJsonl:
    def test_dump_and_load_jsonl(self, session):
        results = session.advise_many([request_for_case(name) for name in SUBSET])
        lines = list(dump_jsonl(results))
        assert len(lines) == len(SUBSET)
        reloaded = list(load_jsonl(lines))
        assert [r.to_dict() for r in reloaded] == [r.to_dict() for r in results]

    def test_jsonl_lines_are_single_line_json(self, session):
        result = session.advise(request_for_case(SUBSET[0]))
        (line,) = dump_jsonl([result])
        assert "\n" not in line
        assert json.loads(line)["label"] == SUBSET[0]


class TestSessionValidation:
    def test_bad_sample_period(self):
        with pytest.raises(ApiValidationError):
            AdvisingSession(sample_period=0)

    def test_bad_jobs(self):
        with pytest.raises(ApiValidationError):
            AdvisingSession(jobs=0)

    def test_unknown_optimizer_name(self):
        with pytest.raises(ApiValidationError):
            AdvisingSession(optimizers=["NoSuchOptimizer"])

    def test_empty_optimizer_list(self):
        with pytest.raises(ApiValidationError):
            AdvisingSession(optimizers=[])

    def test_architecture_by_flag(self):
        assert AdvisingSession(architecture="sm_80").arch_flag == "sm_80"


class TestResultSchema:
    def test_result_round_trip_is_byte_identical(self, session):
        result = session.advise(request_for_case(SUBSET[0]))
        dumped = result.to_dict()
        reloaded = AdvisingResult.from_dict(json.loads(json.dumps(dumped)))
        assert json.dumps(dumped, sort_keys=True) == json.dumps(
            reloaded.to_dict(), sort_keys=True
        )

    def test_error_result_round_trips(self, session):
        result = session.advise(request_for_case("no/such:case"))
        reloaded = AdvisingResult.from_dict(result.to_dict())
        assert not reloaded.ok
        assert reloaded.error == result.error
