"""The memory_model knob: API plumbing, wire format, cache separation."""

import pytest

from repro.api.request import AdvisingRequest, request_for_case
from repro.api.result import AdvisingResult
from repro.api.schema import ApiValidationError
from repro.api.session import AdvisingSession
from repro.pipeline.cache import ProfileCache
from repro.pipeline.stages import ProfileRequest, ProfileStage
from repro.sampling.sample import KernelProfile
from repro.workloads.memory_patterns import (
    memory_microbenchmark,
    microbenchmark_config,
    strided_workload,
)

CASE = "rodinia/hotspot:strength_reduction"


@pytest.fixture(scope="module")
def micro_request():
    return AdvisingRequest(
        source="binary",
        cubin=memory_microbenchmark(),
        kernel="memory_stream",
        config=microbenchmark_config(grid_blocks=32),
        workload=strided_workload(trip_count=16),
    )


class TestRequestKnob:
    def test_defaults_to_none_meaning_session_choice(self):
        request = AdvisingRequest(source="case", case_id=CASE)
        assert request.memory_model is None

    def test_rejects_unknown_model(self):
        with pytest.raises(ApiValidationError, match="unknown memory model"):
            AdvisingRequest(source="case", case_id=CASE, memory_model="banked")

    def test_builder_sets_the_model(self):
        request = (AdvisingRequest.builder().case(CASE).memory_hierarchy().build())
        assert request.memory_model == "hierarchy"
        request = (AdvisingRequest.builder().case(CASE).memory_model("flat").build())
        assert request.memory_model == "flat"

    def test_request_wire_roundtrip_is_a_fixed_point(self):
        request = request_for_case(CASE, memory_model="hierarchy")
        payload = request.to_dict()
        assert payload["memory_model"] == "hierarchy"
        reloaded = AdvisingRequest.from_dict(payload)
        assert reloaded == request
        assert reloaded.to_dict() == payload


class TestSessionKnob:
    def test_session_validates_the_model(self):
        with pytest.raises(ApiValidationError, match="unknown memory model"):
            AdvisingSession(memory_model="banked")

    def test_flat_default_matches_explicit_flat(self):
        default = AdvisingSession(sample_period=8)
        explicit = AdvisingSession(sample_period=8, memory_model="flat")
        a = default.profile(request_for_case(CASE))
        b = explicit.profile(request_for_case(CASE))
        assert default.memory_model == "flat"
        assert a.profile.to_dict() == b.profile.to_dict()
        assert a.profile.statistics.memory_model == "flat"
        assert a.profile.statistics.memory is None

    def test_hierarchy_differs_and_records_statistics(self, micro_request):
        flat = AdvisingSession(sample_period=8).profile(micro_request)
        hier = AdvisingSession(sample_period=8, memory_model="hierarchy").profile(
            micro_request)
        assert hier.profile.statistics.kernel_cycles != flat.profile.statistics.kernel_cycles
        memory = hier.profile.statistics.memory
        assert memory is not None
        assert memory.requests > 0 and memory.sectors > 0
        assert memory.transactions_per_request > 4.0

    def test_request_override_beats_session_default(self, micro_request):
        session = AdvisingSession(sample_period=8)  # flat default
        from dataclasses import replace

        result = session.advise(replace(micro_request, memory_model="hierarchy"))
        assert result.ok
        assert result.memory_model == "hierarchy"
        assert result.report.profile.statistics.memory_model == "hierarchy"

    def test_result_records_the_session_model(self, micro_request):
        result = AdvisingSession(sample_period=8, memory_model="hierarchy").advise(
            micro_request)
        assert result.ok
        assert result.memory_model == "hierarchy"

    def test_pool_config_carries_the_model(self):
        session = AdvisingSession(sample_period=8, memory_model="hierarchy", jobs=2)
        assert session._pool_config()["memory_model"] == "hierarchy"


class TestWireFormat:
    def test_profile_with_memory_statistics_roundtrips(self, micro_request):
        session = AdvisingSession(sample_period=8, memory_model="hierarchy")
        profiled = session.profile(micro_request)
        payload = profiled.profile.to_dict()
        assert payload["statistics"]["memory_model"] == "hierarchy"
        assert payload["statistics"]["memory"]["sectors"] > 0
        reloaded = KernelProfile.from_json(profiled.profile.to_json())
        assert reloaded.to_dict() == payload

    def test_result_wire_roundtrip_keeps_the_model(self, micro_request):
        result = AdvisingSession(sample_period=8, memory_model="hierarchy").advise(
            micro_request)
        payload = result.to_dict()
        assert payload["memory_model"] == "hierarchy"
        reloaded = AdvisingResult.from_dict(payload)
        assert reloaded.memory_model == "hierarchy"
        assert reloaded.to_dict() == payload

    def test_profile_source_reports_the_recorded_model(self, micro_request):
        session = AdvisingSession(sample_period=8, memory_model="hierarchy")
        profiled = session.profile(micro_request)
        analysis_session = AdvisingSession(sample_period=8)  # flat default
        result = analysis_session.advise(
            AdvisingRequest(
                source="profile", profile=profiled.profile, cubin=micro_request.cubin
            )
        )
        assert result.ok
        # The result reflects what the profile was collected with, not the
        # analyzing session's default.
        assert result.memory_model == "hierarchy"


class TestCacheSeparation:
    def test_cache_keys_differ_between_models(self, micro_request, tmp_path):
        request = ProfileRequest(
            cubin=micro_request.cubin, kernel=micro_request.kernel,
            config=micro_request.config, workload=micro_request.workload,
        )
        flat_stage = ProfileStage(sample_period=8, cache=str(tmp_path))
        hier_stage = ProfileStage(
            sample_period=8, cache=str(tmp_path), memory_model="hierarchy")
        assert flat_stage.cache_key(request) != hier_stage.cache_key(request)

    def test_profiles_are_cached_separately(self, micro_request, tmp_path):
        cache = ProfileCache(tmp_path)
        for model in ("flat", "hierarchy"):
            session = AdvisingSession(
                sample_period=8, cache=cache, memory_model=model)
            session.profile(micro_request)
        assert len(cache) == 2

        # A warm replay returns the profile collected with the same model.
        warm = AdvisingSession(
            sample_period=8, cache=cache, memory_model="hierarchy")
        replayed = warm.profile(micro_request)
        assert replayed.simulation is None  # served from cache
        assert replayed.profile.statistics.memory_model == "hierarchy"
        assert replayed.profile.statistics.memory is not None


class TestWholeGpuComposition:
    def test_hierarchy_composes_with_whole_gpu_scope(self, micro_request):
        session = AdvisingSession(
            sample_period=32, memory_model="hierarchy",
            simulation_scope="whole_gpu")
        profiled = session.profile(micro_request)
        statistics = profiled.profile.statistics
        assert statistics.simulation_scope == "whole_gpu"
        assert statistics.memory_model == "hierarchy"
        # Stats merge across every simulated SM: at least one request per
        # occupied SM.
        assert statistics.memory.requests >= profiled.occupancy.blocks_per_sm
