"""Request fingerprints: the content address coalescing and clients key on."""

import pytest

from repro.api.request import (
    FINGERPRINT_EXCLUDED,
    FINGERPRINT_VERSION,
    AdvisingRequest,
    request_for_case,
)
from repro.api.schema import API_SCHEMA_VERSION, ApiSchemaError

CASE_ID = "rodinia/hotspot:strength_reduction"


def hotspot(**knobs):
    return request_for_case(CASE_ID, arch_flag="sm_70", **knobs)


class TestFingerprint:
    def test_deterministic_across_instances(self):
        assert hotspot().fingerprint() == hotspot().fingerprint()

    def test_is_hex_sha256(self):
        digest = hotspot().fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_every_semantic_knob_changes_it(self):
        base = hotspot().fingerprint()
        assert hotspot(sample_period=16).fingerprint() != base
        assert hotspot(simulation_scope="whole_gpu").fingerprint() != base
        assert hotspot(memory_model="hierarchy").fingerprint() != base
        assert hotspot(cache_policy="bypass").fingerprint() != base
        other_arch = request_for_case(CASE_ID, arch_flag="sm_75")
        assert other_arch.fingerprint() != base

    def test_label_is_excluded(self):
        assert FINGERPRINT_EXCLUDED == ("label",)
        labelled = (AdvisingRequest.builder().case(CASE_ID).arch("sm_70")
                    .label("my run").build())
        assert labelled.fingerprint() == hotspot().fingerprint()

    def test_versioned_salt(self):
        # The digest is salted with FINGERPRINT_VERSION, decoupled from the
        # API schema: a wire-format bump alone must not shift fingerprints.
        assert FINGERPRINT_VERSION == 1

    def test_builder_idempotency_key_matches(self):
        builder = AdvisingRequest.builder().case(CASE_ID).sample_period(8)
        assert builder.idempotency_key() == builder.build().fingerprint()


class TestWireForm:
    def test_to_dict_carries_fingerprint(self):
        payload = hotspot().to_dict()
        assert payload["schema_version"] == API_SCHEMA_VERSION
        assert payload["fingerprint"] == hotspot().fingerprint()

    def test_round_trip_preserves_fingerprint(self):
        payload = hotspot().to_dict()
        assert AdvisingRequest.from_dict(payload).fingerprint() == (
            payload["fingerprint"]
        )

    def test_strict_loader_rejects_stated_mismatch(self):
        payload = hotspot().to_dict()
        payload["fingerprint"] = "0" * 64
        with pytest.raises(ApiSchemaError, match="fingerprint"):
            AdvisingRequest.from_dict(payload)

    def test_absent_fingerprint_is_tolerated(self):
        # Older (schema<=6) senders never stated one; absence is not a lie.
        payload = hotspot().to_dict()
        del payload["fingerprint"]
        assert AdvisingRequest.from_dict(payload) == hotspot()
