"""Tests for the architecture models."""

import pytest

from repro.arch.machine import (
    ArchitectureError,
    GpuArchitecture,
    KeplerLike,
    PascalLike,
    VoltaV100,
    get_architecture,
    register_architecture,
)


def test_volta_configuration_matches_paper_platform():
    assert VoltaV100.arch_flag == "sm_70"
    assert VoltaV100.num_sms == 80
    assert VoltaV100.schedulers_per_sm == 4
    assert VoltaV100.warp_size == 32
    assert VoltaV100.max_registers_per_thread == 255
    assert VoltaV100.max_warps_per_scheduler == 16


def test_lookup_by_arch_flag():
    assert get_architecture("sm_70") is VoltaV100
    assert get_architecture("sm_60") is PascalLike
    with pytest.raises(ArchitectureError):
        get_architecture("sm_999")


def test_latency_overrides():
    assert KeplerLike.latency("FADD") == 9
    assert VoltaV100.latency("FADD") == 4
    assert PascalLike.latency("LDG") == 450


def test_latency_upper_bound_for_variable_latency():
    assert VoltaV100.latency_upper_bound("LDG") > VoltaV100.latency("LDG")
    assert VoltaV100.latency_upper_bound("IADD") == VoltaV100.latency("IADD")


def test_cycles_to_microseconds():
    assert VoltaV100.cycles_to_microseconds(1380) == pytest.approx(1.0)


def test_register_architecture_roundtrip():
    custom = GpuArchitecture(
        name="Test", arch_flag="sm_999", num_sms=1, schedulers_per_sm=1, warp_size=32,
        max_warps_per_sm=8, max_blocks_per_sm=4, max_threads_per_block=256,
        registers_per_sm=1024, max_registers_per_thread=64, register_allocation_unit=8,
        shared_memory_per_sm=1024, shared_memory_allocation_unit=8,
        instruction_cache_bytes=1024, max_outstanding_memory_requests=8,
    )
    register_architecture(custom)
    try:
        assert get_architecture("sm_999") is custom
    finally:
        from repro.arch import machine
        machine._REGISTRY.pop("sm_999", None)


class TestNewerGenerations:
    """The Turing (sm_75) and Ampere (sm_80) models added for multi-arch sweeps."""

    def test_registered(self):
        from repro.arch.machine import AmpereLike, TuringLike, architecture_flags

        assert get_architecture("sm_75") is TuringLike
        assert get_architecture("sm_80") is AmpereLike
        assert {"sm_35", "sm_60", "sm_70", "sm_75", "sm_80"} <= set(architecture_flags())

    def test_occupancy_limits_diverge_from_volta(self):
        from repro.arch.machine import AmpereLike, TuringLike
        from repro.arch.occupancy import OccupancyCalculator

        volta = OccupancyCalculator(VoltaV100).calculate(
            grid_blocks=4096, threads_per_block=256
        )
        turing = OccupancyCalculator(TuringLike).calculate(
            grid_blocks=4096, threads_per_block=256
        )
        ampere = OccupancyCalculator(AmpereLike).calculate(
            grid_blocks=4096, threads_per_block=256
        )
        # Turing's 32 warp slots halve the resident warps per SM.
        assert turing.warps_per_sm < volta.warps_per_sm
        # Ampere's extra SMs change the wave count for the same grid.
        assert ampere.waves < volta.waves

    def test_latency_overrides_differ(self):
        from repro.arch.machine import AmpereLike, TuringLike

        assert TuringLike.latency("LDG") != VoltaV100.latency("LDG")
        assert AmpereLike.latency("LDG") != TuringLike.latency("LDG")
