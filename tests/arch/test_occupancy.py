"""Tests for the occupancy calculator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.machine import VoltaV100
from repro.arch.occupancy import OccupancyCalculator


@pytest.fixture(scope="module")
def calculator():
    return OccupancyCalculator(VoltaV100)


def test_full_occupancy_with_moderate_resources(calculator):
    result = calculator.calculate(grid_blocks=8000, threads_per_block=256,
                                  registers_per_thread=32)
    assert result.warps_per_sm == 64
    assert result.occupancy == pytest.approx(1.0)
    assert result.warps_per_scheduler == pytest.approx(16.0)


def test_register_limited_occupancy(calculator):
    result = calculator.calculate(grid_blocks=8000, threads_per_block=256,
                                  registers_per_thread=128)
    assert result.limiter == "registers"
    assert result.occupancy < 1.0


def test_shared_memory_limited_occupancy(calculator):
    result = calculator.calculate(grid_blocks=8000, threads_per_block=128,
                                  registers_per_thread=32,
                                  shared_memory_per_block=48 * 1024)
    assert result.limiter == "shared_memory"
    assert result.blocks_per_sm == 2


def test_block_limited_occupancy_with_tiny_blocks(calculator):
    # 16-thread blocks: the 32-blocks/SM limit caps occupancy (gaussian Fan2).
    result = calculator.calculate(grid_blocks=100000, threads_per_block=16,
                                  registers_per_thread=32)
    assert result.limiter == "blocks"
    assert result.warps_per_sm == 32


def test_grid_limited_occupancy(calculator):
    # Fewer blocks than SMs: each SM gets at most one block (PeleC / particlefilter).
    result = calculator.calculate(grid_blocks=16, threads_per_block=256,
                                  registers_per_thread=32)
    assert result.limiter == "grid"
    assert result.blocks_per_sm == 1
    assert result.is_grid_limited


def test_waves_computation(calculator):
    result = calculator.calculate(grid_blocks=160, threads_per_block=1024,
                                  registers_per_thread=32)
    assert result.waves == pytest.approx(160 / (2 * 80))


def test_invalid_launches_rejected(calculator):
    with pytest.raises(ValueError):
        calculator.calculate(grid_blocks=1, threads_per_block=0)
    with pytest.raises(ValueError):
        calculator.calculate(grid_blocks=1, threads_per_block=2048)
    with pytest.raises(ValueError):
        calculator.calculate(grid_blocks=1, threads_per_block=1024,
                             registers_per_thread=255)


@settings(max_examples=100, deadline=None)
@given(
    grid=st.integers(min_value=1, max_value=100000),
    threads=st.integers(min_value=1, max_value=1024),
    registers=st.integers(min_value=16, max_value=128),
)
def test_occupancy_invariants(grid, threads, registers):
    """Occupancy never exceeds hardware limits, whatever the launch shape."""
    calculator = OccupancyCalculator(VoltaV100)
    try:
        result = calculator.calculate(grid, threads, registers)
    except ValueError:
        return  # configurations that exceed per-SM resources are rejected
    assert 0 < result.blocks_per_sm <= VoltaV100.max_blocks_per_sm
    assert 0 < result.warps_per_sm <= VoltaV100.max_warps_per_sm
    assert 0.0 < result.occupancy <= 1.0
    assert result.warps_per_scheduler <= VoltaV100.max_warps_per_scheduler
