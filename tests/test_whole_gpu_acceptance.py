"""Acceptance: the whole-GPU engine on a real multi-wave registry case.

``rodinia/heartwall:loop_unrolling`` launches 510 blocks — 3 full dispatch
waves plus a 30-block tail on the simulated V100 — making it the cheapest
registry case that genuinely exercises multi-wave dispatch.  The whole run
is simulated once per sample period (module-scoped fixtures); the tests
assert the acceptance criteria of the whole-GPU engine:

* kernel cycles are *measured* (the sum of per-wave maxima) and differ from
  the ``wave_cycles * waves`` extrapolation only through tail/imbalance
  effects;
* the run is deterministic and observation-neutral (bit-identical kernel
  cycles across sample periods);
* profiles round-trip through ``to_dict``/``from_dict``;
* whole-GPU entries never collide with single-wave entries in the
  ``ProfileCache``.
"""

import json
import math

import pytest

from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.sampling.gpu import GpuSimulationResult
from repro.sampling.sample import KernelProfile

# The module-scoped whole-GPU simulations are the suite's most expensive
# fixtures; keep every test of this module on one xdist worker.
pytestmark = pytest.mark.xdist_group("whole_gpu_acceptance")

CASE = "rodinia/heartwall:loop_unrolling"


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("whole-gpu-cache"))


@pytest.fixture(scope="module")
def whole_gpu(cache_dir):
    session = AdvisingSession(
        sample_period=32, cache=cache_dir, simulation_scope="whole_gpu"
    )
    return session, session.profile(request_for_case(CASE))


@pytest.fixture(scope="module")
def whole_gpu_other_period(cache_dir):
    session = AdvisingSession(
        sample_period=128, cache=cache_dir, simulation_scope="whole_gpu"
    )
    return session.profile(request_for_case(CASE))


def test_case_is_genuinely_multi_wave(whole_gpu):
    session, profiled = whole_gpu
    assert profiled.occupancy.waves > 1.0
    simulation = profiled.simulation
    assert isinstance(simulation, GpuSimulationResult)
    grid = profiled.config.grid_blocks
    per_wave = profiled.occupancy.blocks_per_sm_limit * session.architecture.num_sms
    assert simulation.num_waves == math.ceil(grid / per_wave)
    assert simulation.num_waves > 1
    # The tail wave is partial and leaves SMs idle.
    tail = simulation.waves[-1]
    assert tail.blocks == grid - (simulation.num_waves - 1) * per_wave
    assert tail.occupied_sms == min(tail.blocks, session.architecture.num_sms)


def test_kernel_cycles_are_measured_not_extrapolated(whole_gpu):
    _session, profiled = whole_gpu
    simulation = profiled.simulation
    statistics = profiled.profile.statistics
    assert statistics.simulation_scope == "whole_gpu"
    # Measured duration is exactly the sum of per-wave maxima...
    assert statistics.kernel_cycles == sum(wave.cycles for wave in simulation.waves)
    assert statistics.wave_cycles == simulation.waves[0].cycles
    # ...and differs from the single-wave extrapolation only via measured
    # tail/imbalance effects: the same order of magnitude, not the same
    # number (the tail wave runs fewer blocks but still costs real cycles).
    extrapolated = simulation.extrapolated_kernel_cycles
    assert extrapolated > 0
    assert statistics.kernel_cycles != pytest.approx(extrapolated, rel=1e-6) or (
        # A grid dividing evenly into identical waves may legitimately match.
        sum(w.blocks for w in simulation.waves) % len(simulation.waves) == 0
    )
    assert 0.25 < statistics.kernel_cycles / extrapolated < 4.0


def test_deterministic_and_observation_neutral_across_runs(
    whole_gpu, whole_gpu_other_period
):
    _session, first = whole_gpu
    second = whole_gpu_other_period
    # Two independent whole-GPU runs at different sampling periods: the
    # timing must be bit-identical (determinism + observation neutrality).
    assert (
        first.profile.statistics.kernel_cycles
        == second.profile.statistics.kernel_cycles
    )
    assert first.profile.statistics.wave_cycles == second.profile.statistics.wave_cycles
    assert first.simulation.issued_instructions == second.simulation.issued_instructions
    assert [w.cycles for w in first.simulation.waves] == [
        w.cycles for w in second.simulation.waves
    ]


def test_profile_round_trips_through_the_wire_format(whole_gpu):
    _session, profiled = whole_gpu
    dumped = profiled.profile.to_dict()
    reloaded = KernelProfile.from_dict(json.loads(json.dumps(dumped)))
    assert reloaded.to_dict() == dumped
    assert reloaded.statistics.simulation_scope == "whole_gpu"
    assert reloaded.statistics.kernel_cycles == profiled.profile.statistics.kernel_cycles


def test_scopes_never_collide_in_the_profile_cache(whole_gpu, cache_dir):
    session, profiled = whole_gpu
    entries_before = len(session.cache)
    single_session = AdvisingSession(
        sample_period=32, cache=cache_dir, simulation_scope="single_wave"
    )
    single = single_session.profile(request_for_case(CASE))
    # The single-wave profile missed (simulated fresh) and stored its own
    # entry next to the whole-GPU one.
    assert single.simulation is not None
    assert single_session.cache.hits == 0
    assert len(single_session.cache) == entries_before + 1
    assert single.profile.statistics.simulation_scope == "single_wave"
    assert single.profile.statistics.kernel_cycles != pytest.approx(
        profiled.profile.statistics.kernel_cycles
    )
    # And a warm whole-GPU session replays only the whole-GPU entry.
    warm = AdvisingSession(
        sample_period=32, cache=cache_dir, simulation_scope="whole_gpu"
    )
    replay = warm.profile(request_for_case(CASE))
    assert replay.simulation is None
    assert warm.cache.hits == 1
    assert replay.profile.to_dict() == profiled.profile.to_dict()
