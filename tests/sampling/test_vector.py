"""The vector (packed-array) simulator core: identity, layout, fallback."""

import dataclasses

import pytest

from repro.arch.machine import VoltaV100
from repro.sampling import vector
from repro.sampling.memory import MemoryHierarchy
from repro.sampling.simulator import SMSimulator
from repro.sampling.trace import generate_warp_trace
from repro.sampling.vector import (
    DEFAULT_BACKEND,
    SIMULATOR_BACKENDS,
    VectorSMSimulator,
    check_simulator_backend,
    coalesced_sectors,
    make_sm_simulator,
    resolve_simulator_backend,
    vector_backend_available,
)
from repro.structure.program import build_program_structure

np = pytest.importorskip("numpy")


def build_traces(cubin, kernel, workload, num_warps, warps_per_block=4):
    structure = build_program_structure(cubin)
    traces, blocks = [], []
    for warp in range(num_warps):
        traces.append(
            generate_warp_trace(structure, kernel, workload, VoltaV100, warp, num_warps)
        )
        blocks.append(warp // warps_per_block)
    return traces, blocks


@pytest.fixture(scope="module")
def toy_traces(toy_cubin, toy_workload):
    return build_traces(toy_cubin, "toy_kernel", toy_workload, num_warps=8)


def result_facts(result):
    """Everything a SimulationResult reports, in comparable form."""
    memory = result.memory.to_dict() if result.memory is not None else None
    return (
        result.kernel,
        result.wave_cycles,
        result.stall_counts,
        result.issue_counts,
        result.active_samples,
        result.latency_samples,
        result.issued_instructions,
        [dataclasses.astuple(sample) for sample in result.samples],
        memory,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("memory_model", ["flat", "hierarchy"])
    @pytest.mark.parametrize("sample_period", [8, 32, 128])
    def test_matches_object_core(self, toy_traces, memory_model, sample_period):
        traces, blocks = toy_traces
        kwargs = dict(
            sample_period=sample_period, keep_samples=True, memory_model=memory_model
        )
        expected = SMSimulator(VoltaV100, **kwargs).simulate("toy_kernel", traces, blocks)
        actual = VectorSMSimulator(VoltaV100, **kwargs).simulate(
            "toy_kernel", traces, blocks
        )
        assert result_facts(actual) == result_facts(expected)

    def test_matches_object_core_with_sm_id(self, toy_traces):
        traces, blocks = toy_traces
        expected = SMSimulator(VoltaV100, sample_period=4, keep_samples=True).simulate(
            "toy_kernel", traces, blocks, sm_id=7
        )
        actual = VectorSMSimulator(
            VoltaV100, sample_period=4, keep_samples=True
        ).simulate("toy_kernel", traces, blocks, sm_id=7)
        assert result_facts(actual) == result_facts(expected)
        assert all(sample.sm_id == 7 for sample in actual.samples)


class TestObservationNeutrality:
    @pytest.mark.parametrize("memory_model", ["flat", "hierarchy"])
    def test_sampling_never_perturbs_execution(self, toy_traces, memory_model):
        """Execution facts are identical across sample periods 8/32/128."""
        traces, blocks = toy_traces
        facts = []
        for period in (8, 32, 128):
            result = VectorSMSimulator(
                VoltaV100, sample_period=period, memory_model=memory_model
            ).simulate("toy_kernel", traces, blocks)
            memory = result.memory.to_dict() if result.memory is not None else None
            facts.append(
                (result.wave_cycles, result.issued_instructions, memory)
            )
        assert facts[0] == facts[1] == facts[2]


class TestScoreboard:
    def test_scoreboard_array_shape_and_dtype(self, toy_traces):
        traces, blocks = toy_traces
        simulator = VectorSMSimulator(VoltaV100, sample_period=32)
        assert simulator.scoreboard_array().shape == (0, 0)
        simulator.simulate("toy_kernel", traces, blocks)
        board = simulator.scoreboard_array()
        assert board.dtype == np.int64
        assert board.shape[0] == len(traces)
        assert board.shape[1] > 0
        # Registers were written: at least one entry advanced past cycle 0.
        assert int(board.max()) > 0


class TestCoalescedSectors:
    @pytest.mark.parametrize("stride", [1, 4, 8, 32, 128])
    def test_matches_scalar_hierarchy_coalescing(self, toy_traces, stride):
        hierarchy = MemoryHierarchy(VoltaV100.memory, warp_size=VoltaV100.warp_size)
        traces, _ = toy_traces
        op = next(
            op for trace in traces for op in trace if op.transactions
        )
        probe = dataclasses.replace(op, address=0x1000, stride_bytes=stride)
        expected = tuple(hierarchy.sector_addresses(probe))
        actual = coalesced_sectors(
            0x1000, stride, VoltaV100.warp_size, VoltaV100.memory.sector_bytes
        )
        assert actual == expected


class TestBackendResolution:
    def test_valid_backends(self):
        assert SIMULATOR_BACKENDS == ("object", "vector")
        for backend in SIMULATOR_BACKENDS:
            assert check_simulator_backend(backend) == backend

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator backend"):
            check_simulator_backend("gpu")
        with pytest.raises(ValueError, match="unknown simulator backend"):
            resolve_simulator_backend("gpu")

    def test_none_resolves_to_default(self, monkeypatch):
        monkeypatch.delenv(vector.BACKEND_ENV_VAR, raising=False)
        assert resolve_simulator_backend(None) == DEFAULT_BACKEND

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(vector.BACKEND_ENV_VAR, "object")
        assert resolve_simulator_backend(None) == "object"
        # An explicit argument wins over the environment.
        assert resolve_simulator_backend("vector") == "vector"

    def test_vector_falls_back_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "_np", None)
        assert not vector_backend_available()
        assert resolve_simulator_backend("vector") == "object"
        assert resolve_simulator_backend(None) == "object"
        with pytest.raises(RuntimeError, match="requires numpy"):
            VectorSMSimulator(VoltaV100)

    def test_factory_builds_the_resolved_core(self):
        assert isinstance(
            make_sm_simulator(VoltaV100, simulator_backend="vector"), VectorSMSimulator
        )
        assert isinstance(
            make_sm_simulator(VoltaV100, simulator_backend="object"), SMSimulator
        )

    def test_factory_forwards_configuration(self):
        simulator = make_sm_simulator(
            VoltaV100, sample_period=16, keep_samples=True,
            max_cycles=1000, memory_model="hierarchy", simulator_backend="vector",
        )
        assert simulator.sample_period == 16
        assert simulator.keep_samples is True
        assert simulator.max_cycles == 1000
        assert simulator.memory_model == "hierarchy"


class TestInputValidation:
    def test_mismatched_blocks_rejected(self, toy_traces):
        traces, blocks = toy_traces
        with pytest.raises(ValueError, match="same length"):
            VectorSMSimulator(VoltaV100).simulate("toy_kernel", traces, blocks[:-1])

    def test_empty_warp_set_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            VectorSMSimulator(VoltaV100).simulate("toy_kernel", [], [])

    def test_bad_sample_period_rejected(self):
        with pytest.raises(ValueError, match="sample_period"):
            VectorSMSimulator(VoltaV100, sample_period=0)
