"""Acceptance: flat stays bit-identical to the seed, hierarchy diverges.

The recorded constants below are kernel_cycles values produced by the
simulator *before* the memory-hierarchy engine landed (default session,
sample_period=8, sm_70, single-wave scope).  ``memory_model="flat"`` — the
default — must keep reproducing them bit-for-bit; the hierarchy model must
produce *different* cycles plus nonzero coalescing/hit-rate statistics.
"""

import pytest

from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.workloads.registry import case_names

# Full-registry sweeps under both memory models: keep this module's tests
# on one xdist worker so the simulations run once.
pytestmark = pytest.mark.xdist_group("memory_acceptance")

#: Pre-hierarchy kernel_cycles of every registry baseline (seed behaviour).
SEED_KERNEL_CYCLES = {
    "rodinia/backprop:warp_balance": 39645.86666666667,
    "rodinia/backprop:strength_reduction": 39645.86666666667,
    "rodinia/bfs:loop_unrolling": 454937.6,
    "rodinia/b+tree:code_reorder": 291250.0,
    "rodinia/cfd:fast_math": 20420.0,
    "rodinia/gaussian:thread_increase": 23987.2,
    "rodinia/heartwall:loop_unrolling": 34616.25,
    "rodinia/hotspot:strength_reduction": 8278.127083333333,
    "rodinia/huffman:warp_balance": 12868.800000000001,
    "rodinia/kmeans:loop_unrolling": 181318.5,
    "rodinia/lavaMD:loop_unrolling": 3220.0,
    "rodinia/lud:code_reorder": 17359.0,
    "rodinia/myocyte:fast_math": 158740.0,
    "rodinia/myocyte:function_splitting": 158740.0,
    "rodinia/nw:warp_balance": 3454.0,
    "rodinia/particlefilter:block_increase": 14876.0,
    "rodinia/streamcluster:block_increase": 10736.0,
    "rodinia/sradv1:warp_balance": 15460.800000000001,
    "rodinia/pathfinder:code_reorder": 19390.05416666667,
    "Quicksilver:function_inlining": 91143.0,
    "Quicksilver:register_reuse": 91143.0,
    "ExaTENSOR:strength_reduction": 118470.40000000001,
    "ExaTENSOR:memory_transaction_reduction": 120768.0,
    "PeleC:block_increase": 9522.0,
    "Minimod:fast_math": 35743.75,
    "Minimod:code_reorder": 21748.046875,
}


def test_seed_table_covers_the_whole_registry():
    assert sorted(SEED_KERNEL_CYCLES) == sorted(case_names())


@pytest.fixture(scope="module")
def flat_session():
    return AdvisingSession(sample_period=8)


@pytest.mark.parametrize("case_id", sorted(SEED_KERNEL_CYCLES))
def test_default_flat_model_reproduces_seed_cycles(flat_session, case_id):
    profiled = flat_session.profile(request_for_case(case_id))
    assert profiled.profile.statistics.kernel_cycles == SEED_KERNEL_CYCLES[case_id]
    assert profiled.profile.statistics.memory_model == "flat"
    assert profiled.profile.statistics.memory is None


def test_hierarchy_model_diverges_on_a_memory_bound_case():
    case_id = "ExaTENSOR:memory_transaction_reduction"  # uncoalesced accesses
    session = AdvisingSession(sample_period=8, memory_model="hierarchy")
    profiled = session.profile(request_for_case(case_id))
    statistics = profiled.profile.statistics
    assert statistics.kernel_cycles != SEED_KERNEL_CYCLES[case_id]
    assert statistics.memory_model == "hierarchy"
    assert statistics.memory is not None
    assert statistics.memory.sectors > statistics.memory.requests
