"""Tests for workload specifications."""

from repro.sampling.workload import WorkloadSpec


def test_trip_count_defaults_and_overrides():
    spec = WorkloadSpec(loop_trip_counts={10: 7}, default_trip_count=3)
    assert spec.trip_count(10, warp_id=0, num_warps=4) == 7
    assert spec.trip_count(99, warp_id=0, num_warps=4) == 3
    assert spec.trip_count(None, warp_id=0, num_warps=4) == 3


def test_callable_trip_counts_model_imbalance():
    spec = WorkloadSpec(loop_trip_counts={10: lambda warp, total: 20 if warp == 0 else 2})
    assert spec.trip_count(10, 0, 8) == 20
    assert spec.trip_count(10, 3, 8) == 2


def test_branch_probability_lookup():
    spec = WorkloadSpec(branch_taken={30: 0.9}, default_branch_taken=0.25)
    assert spec.branch_probability(30) == 0.9
    assert spec.branch_probability(31) == 0.25


def test_call_targets_and_transactions():
    spec = WorkloadSpec(call_targets={5: "helper"}, uncoalesced_lines={7},
                        uncoalesced_transactions=8)
    assert spec.call_target(5) == "helper"
    assert spec.call_target(6) is None
    assert spec.transactions(7) == 8
    assert spec.transactions(8) == 1


def test_rng_is_deterministic_per_warp():
    spec = WorkloadSpec(seed=11)
    assert spec.rng_for_warp(3).random() == spec.rng_for_warp(3).random()
    assert spec.rng_for_warp(3).random() != spec.rng_for_warp(4).random()


def test_copy_overrides_without_mutating_original():
    spec = WorkloadSpec(loop_trip_counts={10: 7})
    copy = spec.copy(memory_latency_scale=2.0)
    copy.loop_trip_counts[10] = 99
    assert spec.loop_trip_counts[10] == 7
    assert copy.memory_latency_scale == 2.0
    assert spec.memory_latency_scale == 1.0
