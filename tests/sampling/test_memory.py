"""Tests for the memory-hierarchy model (coalescing, L1/L2/DRAM, MSHRs)."""

import pytest

from repro.arch.machine import MemoryHierarchyParameters, VoltaV100
from repro.sampling.memory import (
    MEMORY_MODELS,
    MemoryHierarchy,
    MemoryStatistics,
    SectorCache,
    check_memory_model,
)
from repro.sampling.simulator import SMSimulator
from repro.sampling.stall_reasons import StallReason
from repro.sampling.trace import TraceOp, generate_warp_trace
from repro.structure.program import build_program_structure
from repro.workloads.memory_patterns import (
    cache_resident_workload,
    memory_microbenchmark,
    strided_workload,
    streaming_workload,
)


def _params(**overrides) -> MemoryHierarchyParameters:
    defaults = dict(
        sector_bytes=32, l1_bytes=1024, l1_ways=2, l1_hit_latency=10,
        l1_sectors_per_cycle=4, l1_mshr_entries=4, l2_slice_bytes=4096,
        l2_ways=4, l2_hit_latency=50, dram_latency=200, dram_bytes_per_cycle=8,
    )
    defaults.update(overrides)
    return MemoryHierarchyParameters(**defaults)


class _FakeOp:
    """A minimal stand-in carrying only the fields the hierarchy reads."""

    def __init__(self, address=0, stride_bytes=0, transactions=0):
        self.address = address
        self.stride_bytes = stride_bytes
        self.transactions = transactions


class TestCheckMemoryModel:
    def test_accepts_known_models(self):
        for model in MEMORY_MODELS:
            assert check_memory_model(model) == model

    def test_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown memory model"):
            check_memory_model("magic")


class TestSectorCache:
    def test_miss_then_hit(self):
        cache = SectorCache(1024, ways=2, sector_bytes=32)
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction_within_a_set(self):
        cache = SectorCache(128, ways=2, sector_bytes=32)  # 2 sets x 2 ways
        set_stride = cache.num_sets * 32
        a, b, c = 0, set_stride, 2 * set_stride  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)          # evicts a (LRU)
        assert cache.access(b) is True
        assert cache.access(a) is False  # was evicted

    def test_capacity_must_hold_one_set(self):
        with pytest.raises(ValueError):
            SectorCache(32, ways=4, sector_bytes=32)


class TestCoalescing:
    def test_unit_stride_touches_four_sectors(self):
        hierarchy = MemoryHierarchy(_params(), warp_size=32)
        sectors = hierarchy.sector_addresses(_FakeOp(address=0, stride_bytes=4))
        # 32 threads x 4 bytes = 128 bytes = 4 aligned 32-byte sectors.
        assert sectors == [0, 32, 64, 96]

    def test_full_stride_touches_one_sector_per_thread(self):
        hierarchy = MemoryHierarchy(_params(), warp_size=32)
        sectors = hierarchy.sector_addresses(_FakeOp(address=0, stride_bytes=128))
        assert len(sectors) == 32

    def test_unaligned_access_spills_into_an_extra_sector(self):
        hierarchy = MemoryHierarchy(_params(), warp_size=32)
        sectors = hierarchy.sector_addresses(_FakeOp(address=30, stride_bytes=4))
        # The footprint [30, 158) covers sectors 0..4.
        assert sectors == [0, 32, 64, 96, 128]

    def test_ops_without_addresses_fall_back_to_transaction_count(self):
        hierarchy = MemoryHierarchy(_params(), warp_size=32)
        first = hierarchy.sector_addresses(_FakeOp(transactions=3))
        second = hierarchy.sector_addresses(_FakeOp(transactions=3))
        assert len(first) == len(second) == 3
        # The rolling cursor keeps fallback accesses from aliasing.
        assert not set(first) & set(second)


class TestHierarchyTiming:
    def test_l1_hit_is_faster_than_l2_hit_is_faster_than_dram(self):
        hierarchy = MemoryHierarchy(_params(), warp_size=32)
        op = _FakeOp(address=0, stride_bytes=4)
        dram = hierarchy.access(op, 0)
        l1 = hierarchy.access(op, 0)
        assert dram > l1
        assert hierarchy.statistics.l1_hits == 4
        assert hierarchy.statistics.dram_sectors == 4

    def test_dram_bandwidth_serializes_transfers(self):
        parameters = _params(dram_bytes_per_cycle=8)  # 4 cycles per sector
        hierarchy = MemoryHierarchy(parameters, warp_size=32)
        first = hierarchy.access(_FakeOp(address=0, stride_bytes=128), 0)
        hierarchy_idle = MemoryHierarchy(parameters, warp_size=32)
        single = hierarchy_idle.access(_FakeOp(address=0, stride_bytes=4), 0)
        # 32 queued sectors wait behind each other at 4 cycles each; a
        # 4-sector access on an idle channel completes much earlier.
        assert first > single

    def test_mshr_backpressure_reports_a_recheck_cycle(self):
        hierarchy = MemoryHierarchy(_params(l1_mshr_entries=4), warp_size=32)
        hierarchy.access(_FakeOp(address=0, stride_bytes=128), 0)  # 32 misses
        recheck = hierarchy.backpressure(1, commit=True)
        assert recheck is not None and recheck > 1
        # Once every miss completes the pipeline accepts requests again.
        assert hierarchy.backpressure(recheck + 10_000, commit=True) is None

    def test_observation_probe_does_not_mutate_mshrs(self):
        hierarchy = MemoryHierarchy(_params(l1_mshr_entries=4), warp_size=32)
        hierarchy.access(_FakeOp(address=0, stride_bytes=128), 0)
        before = list(hierarchy._mshrs)
        assert hierarchy.backpressure(10**9, commit=False) is None
        assert hierarchy._mshrs == before  # commit=True would have drained


class TestStatistics:
    def test_counters_are_level_consistent(self):
        hierarchy = MemoryHierarchy(_params(), warp_size=32)
        for index in range(64):
            hierarchy.access(_FakeOp(address=index * 128, stride_bytes=4), index)
        stats = hierarchy.statistics
        assert stats.l1_hits + stats.l1_misses == stats.sectors
        assert stats.l2_hits + stats.l2_misses == stats.l1_misses
        assert stats.dram_sectors == stats.l2_misses
        assert stats.dram_bytes == stats.dram_sectors * 32

    def test_merge_accumulates_and_roundtrips(self):
        a = MemoryStatistics(requests=2, sectors=8, l1_hits=4, l1_misses=4,
                             l2_hits=2, l2_misses=2, dram_bytes=64)
        b = MemoryStatistics(requests=1, sectors=4, l1_hits=0, l1_misses=4,
                             l2_hits=4, l2_misses=0)
        a.merge(b)
        assert a.requests == 3 and a.sectors == 12 and a.l2_hits == 6
        assert MemoryStatistics.from_dict(a.to_dict()).to_dict() == a.to_dict()

    def test_rates(self):
        stats = MemoryStatistics(requests=2, sectors=16, l1_hits=12, l1_misses=4,
                                 l2_hits=3, l2_misses=1)
        assert stats.l1_hit_rate == 0.75
        assert stats.l2_hit_rate == 0.75
        assert stats.transactions_per_request == 8.0


@pytest.fixture(scope="module")
def micro_setup():
    cubin = memory_microbenchmark()
    structure = build_program_structure(cubin)
    return cubin, structure


def _traces(structure, workload, num_warps=8):
    traces, blocks = [], []
    for warp in range(num_warps):
        traces.append(generate_warp_trace(
            structure, "memory_stream", workload, VoltaV100, warp, num_warps))
        blocks.append(warp // 4)
    return traces, blocks


class TestSimulatorIntegration:
    def test_flat_is_the_default_and_unchanged(self, micro_setup):
        _cubin, structure = micro_setup
        traces, blocks = _traces(structure, streaming_workload())
        default = SMSimulator(VoltaV100, sample_period=8)
        explicit = SMSimulator(VoltaV100, sample_period=8, memory_model="flat")
        a = default.simulate("memory_stream", traces, blocks)
        b = explicit.simulate("memory_stream", traces, blocks)
        assert default.memory_model == "flat"
        assert a.wave_cycles == b.wave_cycles
        assert a.stall_counts == b.stall_counts
        assert a.memory is None and b.memory is None

    def test_hierarchy_changes_timing_and_records_statistics(self, micro_setup):
        _cubin, structure = micro_setup
        traces, blocks = _traces(structure, strided_workload())
        flat = SMSimulator(VoltaV100, sample_period=8).simulate(
            "memory_stream", traces, blocks)
        hier = SMSimulator(VoltaV100, sample_period=8, memory_model="hierarchy").simulate(
            "memory_stream", traces, blocks)
        assert hier.wave_cycles != flat.wave_cycles
        assert hier.memory is not None
        assert hier.memory.requests > 0
        assert hier.memory.transactions_per_request > 4.0  # uncoalesced

    def test_cache_resident_beats_streaming(self, micro_setup):
        _cubin, structure = micro_setup
        resident_traces, blocks = _traces(structure, cache_resident_workload())
        stream_traces, _ = _traces(structure, streaming_workload())
        simulator = SMSimulator(VoltaV100, sample_period=8, memory_model="hierarchy")
        resident = simulator.simulate("memory_stream", resident_traces, blocks)
        stream = simulator.simulate("memory_stream", stream_traces, blocks)
        assert resident.memory.l1_hit_rate > 0.5
        assert resident.memory.l1_hit_rate > stream.memory.l1_hit_rate
        assert resident.wave_cycles < stream.wave_cycles

    def test_strided_access_produces_memory_throttle_stalls(self, micro_setup):
        _cubin, structure = micro_setup
        traces, blocks = _traces(structure, strided_workload(), num_warps=16)
        result = SMSimulator(VoltaV100, sample_period=2, memory_model="hierarchy").simulate(
            "memory_stream", traces, blocks)
        reasons = {}
        for counts in result.stall_counts.values():
            for reason, count in counts.items():
                reasons[reason] = reasons.get(reason, 0) + count
        assert reasons.get(StallReason.MEMORY_THROTTLE, 0) > 0

    def test_hierarchy_sampling_is_observation_neutral(self, micro_setup):
        _cubin, structure = micro_setup
        traces, blocks = _traces(structure, strided_workload())
        cycles = {
            period: SMSimulator(
                VoltaV100, sample_period=period, memory_model="hierarchy"
            ).simulate("memory_stream", traces, blocks).wave_cycles
            for period in (2, 8, 32, 128)
        }
        assert len(set(cycles.values())) == 1, cycles

    def test_hierarchy_is_deterministic(self, micro_setup):
        _cubin, structure = micro_setup
        traces, blocks = _traces(structure, streaming_workload())
        simulator = SMSimulator(VoltaV100, sample_period=8, memory_model="hierarchy")
        a = simulator.simulate("memory_stream", traces, blocks)
        b = simulator.simulate("memory_stream", traces, blocks)
        assert a.wave_cycles == b.wave_cycles
        assert a.memory.to_dict() == b.memory.to_dict()

    def test_rejects_unknown_memory_model(self):
        with pytest.raises(ValueError):
            SMSimulator(VoltaV100, memory_model="banked")


class TestTraceAddresses:
    def test_global_loads_carry_addresses_and_strides(self, micro_setup):
        _cubin, structure = micro_setup
        trace = generate_warp_trace(
            structure, "memory_stream", strided_workload(stride_bytes=64),
            VoltaV100, warp_id=0, num_warps=8)
        loads = [op for op in trace if op.opcode == "LDG"]
        assert loads
        assert all(op.stride_bytes == 64 for op in loads)
        # Consecutive accesses advance through the working set.
        assert len({op.address for op in loads}) > 1

    def test_addresses_do_not_perturb_flat_randomness(self, micro_setup):
        """Attaching addresses must not consume the workload's rng stream."""
        _cubin, structure = micro_setup
        workload = streaming_workload()
        with_addresses = generate_warp_trace(
            structure, "memory_stream", workload, VoltaV100, 0, 8)
        again = generate_warp_trace(
            structure, "memory_stream", workload, VoltaV100, 0, 8)
        assert [op.latency for op in with_addresses] == [op.latency for op in again]

    def test_default_trace_op_has_no_address_info(self):
        op = TraceOp(function="f", instruction=None)
        assert op.address == 0 and op.stride_bytes == 0
