"""Tests for the SM simulator and its PC sampling."""

import pytest

from repro.arch.machine import VoltaV100
from repro.cubin.builder import CubinBuilder, imm, p
from repro.sampling.simulator import SMSimulator
from repro.sampling.stall_reasons import StallReason
from repro.sampling.trace import generate_warp_trace
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import build_program_structure


def build_traces(cubin, kernel, workload, num_warps, warps_per_block=4):
    structure = build_program_structure(cubin)
    traces, blocks = [], []
    for warp in range(num_warps):
        traces.append(generate_warp_trace(structure, kernel, workload, VoltaV100,
                                          warp, num_warps))
        blocks.append(warp // warps_per_block)
    return traces, blocks


@pytest.fixture(scope="module")
def toy_traces(toy_cubin, toy_workload):
    return build_traces(toy_cubin, "toy_kernel", toy_workload, num_warps=8)


class TestSimulation:
    def test_all_instructions_issue(self, toy_cubin, toy_traces):
        traces, blocks = toy_traces
        result = SMSimulator(VoltaV100, sample_period=4).simulate("toy_kernel", traces, blocks)
        assert result.issued_instructions == sum(len(t) for t in traces)
        assert result.wave_cycles > 0

    def test_sample_totals_are_consistent(self, toy_traces):
        traces, blocks = toy_traces
        result = SMSimulator(VoltaV100, sample_period=4).simulate("toy_kernel", traces, blocks)
        assert result.total_samples == result.active_samples + result.latency_samples
        per_instruction = sum(sum(v.values()) for v in result.stall_counts.values())
        assert per_instruction == result.latency_samples
        assert sum(result.issue_counts.values()) == result.active_samples

    def test_memory_dependency_stalls_at_consumer(self, toy_cubin, toy_traces):
        traces, blocks = toy_traces
        result = SMSimulator(VoltaV100, sample_period=2).simulate("toy_kernel", traces, blocks)
        function = toy_cubin.function("toy_kernel")
        use_offsets = [i.offset for i in function.instructions
                       if i.opcode == "FFMA" and i.line == 14]
        memory_stalls = sum(
            result.stall_counts.get(("toy_kernel", offset), {}).get(
                StallReason.MEMORY_DEPENDENCY, 0)
            for offset in use_offsets
        )
        assert memory_stalls > 0

    def test_synchronization_stalls_with_imbalanced_warps(self, toy_cubin):
        workload = WorkloadSpec(
            loop_trip_counts={12: lambda warp, total: 20 if warp % 4 == 0 else 3}
        )
        traces, blocks = build_traces(toy_cubin, "toy_kernel", workload, num_warps=8)
        result = SMSimulator(VoltaV100, sample_period=2).simulate("toy_kernel", traces, blocks)
        reasons = {}
        for counts in result.stall_counts.values():
            for reason, count in counts.items():
                reasons[reason] = reasons.get(reason, 0) + count
        assert reasons.get(StallReason.SYNCHRONIZATION, 0) > 0

    def test_barrier_mismatch_does_not_deadlock(self, toy_cubin):
        # Warps of the same block execute different numbers of barriers; the
        # simulator must still terminate (live-warp release rule).
        workload = WorkloadSpec(
            loop_trip_counts={12: lambda warp, total: 6 if warp % 2 == 0 else 2}
        )
        traces, blocks = build_traces(toy_cubin, "toy_kernel", workload, num_warps=4)
        result = SMSimulator(VoltaV100, sample_period=4, max_cycles=200_000).simulate(
            "toy_kernel", traces, blocks)
        assert result.issued_instructions == sum(len(t) for t in traces)

    def test_sample_period_scales_sample_count(self, toy_traces):
        traces, blocks = toy_traces
        dense = SMSimulator(VoltaV100, sample_period=2).simulate("toy_kernel", traces, blocks)
        sparse = SMSimulator(VoltaV100, sample_period=16).simulate("toy_kernel", traces, blocks)
        assert dense.total_samples > sparse.total_samples

    def test_keep_samples_records_raw_stream(self, toy_traces):
        traces, blocks = toy_traces
        result = SMSimulator(VoltaV100, sample_period=8, keep_samples=True).simulate(
            "toy_kernel", traces, blocks)
        assert len(result.samples) == result.total_samples
        schedulers = {sample.scheduler_id for sample in result.samples}
        assert schedulers <= set(range(VoltaV100.schedulers_per_sm))
        assert all(sample.cycle <= result.wave_cycles for sample in result.samples)

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            SMSimulator(VoltaV100).simulate("k", [], [])
        with pytest.raises(ValueError):
            SMSimulator(VoltaV100).simulate("k", [[]], [0, 1])

    def test_invalid_sample_period_rejected(self):
        with pytest.raises(ValueError):
            SMSimulator(VoltaV100, sample_period=0)


def build_fetch_pressure_cubin():
    """A kernel whose code footprint exceeds the V100 i-cache (12 KiB).

    With >768 static instructions the trace generator charges periodic
    instruction-fetch stalls, the stall class whose bookkeeping
    (``fetch_ready`` arming) the sampler must never touch.
    """
    builder = CubinBuilder(module_name="fetch_pressure")
    k = builder.kernel("fat_kernel", source_file="fat.cu")
    k.at_line(1)
    k.mov_imm(2, 0x100)
    k.mov_imm(8, 0)
    k.mov_imm(9, 4)
    k.at_line(2)
    k.isetp(0, 8, 9, "LT")
    with k.loop("body", predicate=p(0)):
        k.at_line(2)
        k.iadd(8, 8, imm(1))
        k.at_line(3)
        k.ldg(4, 2)
        for index in range(820):
            k.at_line(4 + index % 8)
            k.ffma(10 + index % 32, 4, 4, 10 + index % 32)
        k.at_line(2)
        k.isetp(0, 8, 9, "LT")
    k.exit()
    builder.add_function(k.build())
    return builder.build()


class TestObservationNeutrality:
    """Sampling must never perturb execution (the CUPTI profiler cannot).

    Regression guard for the heisenbug where ``record_sample`` re-evaluated
    a stale stall reason through ``check()``, which arms fetch timers,
    registers barrier arrivals and pops outstanding memory transactions —
    so changing ``sample_period`` changed the simulated timing.
    """

    PERIODS = (1, 3, 8, 32, 128)

    def _timing(self, traces, blocks, period):
        result = SMSimulator(VoltaV100, sample_period=period).simulate(
            "toy_kernel", traces, blocks)
        return (result.wave_cycles, result.issued_instructions)

    @pytest.mark.parametrize("workload", [
        WorkloadSpec(loop_trip_counts={12: 12}),
        WorkloadSpec(loop_trip_counts={12: lambda w, t: 20 if w % 4 == 0 else 3}),
        WorkloadSpec(loop_trip_counts={12: 10}, uncoalesced_lines={13},
                     uncoalesced_transactions=8),
    ], ids=["uniform", "imbalanced-barrier", "memory-throttle"])
    def test_wave_cycles_invariant_across_sample_periods(self, toy_cubin, workload):
        traces, blocks = build_traces(toy_cubin, "toy_kernel", workload, num_warps=12)
        timings = {
            period: self._timing(traces, blocks, period) for period in self.PERIODS
        }
        assert len(set(timings.values())) == 1, timings

    def test_fetch_stall_timing_invariant_across_sample_periods(self):
        cubin = build_fetch_pressure_cubin()
        structure = build_program_structure(cubin)
        workload = WorkloadSpec()
        traces = [generate_warp_trace(structure, "fat_kernel", workload, VoltaV100,
                                      warp, 8) for warp in range(8)]
        assert any(op.fetch_stall for trace in traces for op in trace), (
            "kernel must exceed the i-cache for this regression test")
        blocks = [warp // 4 for warp in range(8)]
        timings = {}
        for period in self.PERIODS:
            result = SMSimulator(VoltaV100, sample_period=period).simulate(
                "fat_kernel", traces, blocks)
            timings[period] = (result.wave_cycles, result.issued_instructions)
        assert len(set(timings.values())) == 1, timings

    def test_sampling_density_only_changes_sample_counts(self, toy_traces):
        traces, blocks = toy_traces
        dense = SMSimulator(VoltaV100, sample_period=2).simulate(
            "toy_kernel", traces, blocks)
        sparse = SMSimulator(VoltaV100, sample_period=64).simulate(
            "toy_kernel", traces, blocks)
        assert dense.total_samples > sparse.total_samples
        assert dense.wave_cycles == sparse.wave_cycles
        assert dense.issued_instructions == sparse.issued_instructions


class TestMemoryThrottle:
    def test_uncoalesced_accesses_cause_throttle_stalls(self):
        builder = CubinBuilder()
        k = builder.kernel("throttle_kernel", source_file="t.cu")
        k.at_line(1)
        k.mov_imm(2, 0)
        k.mov_imm(3, 0)
        k.mov_imm(8, 0)
        k.mov_imm(9, 1 << 16)
        k.at_line(2)
        k.isetp(0, 8, 9, "LT")
        with k.loop("l", predicate=p(0)):
            k.at_line(2)
            k.iadd(8, 8, imm(1))
            k.at_line(3)
            for reg in range(4):
                k.ldg(10 + reg, 2, offset=4 * reg)
            k.at_line(4)
            k.ffma(20, 10, 11, 20)
            k.at_line(2)
            k.isetp(0, 8, 9, "LT")
        k.exit()
        builder.add_function(k.build())
        cubin = builder.build()
        workload = WorkloadSpec(loop_trip_counts={2: 8}, uncoalesced_lines={3},
                                uncoalesced_transactions=8)
        traces, blocks = build_traces(cubin, "throttle_kernel", workload,
                                      num_warps=32, warps_per_block=8)
        result = SMSimulator(VoltaV100, sample_period=4).simulate(
            "throttle_kernel", traces, blocks)
        totals = {}
        for counts in result.stall_counts.values():
            for reason, count in counts.items():
                totals[reason] = totals.get(reason, 0) + count
        assert totals.get(StallReason.MEMORY_THROTTLE, 0) > 0
