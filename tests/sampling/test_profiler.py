"""Tests for the profiler facade and the profile data model."""

import pytest

from repro.arch.machine import VoltaV100
from repro.sampling.profiler import Profiler
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.stall_reasons import StallReason
from repro.sampling.workload import WorkloadSpec


class TestLaunchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 32)
        with pytest.raises(ValueError):
            LaunchConfig(1, 0)

    def test_with_helpers(self):
        config = LaunchConfig(16, 256)
        assert config.with_blocks(32).grid_blocks == 32
        assert config.with_threads(512).threads_per_block == 512
        assert config.total_threads == 16 * 256


class TestProfiler:
    def test_profile_contains_launch_statistics(self, toy_profiled, toy_config):
        stats = toy_profiled.profile.statistics
        assert stats.kernel == "toy_kernel"
        assert stats.config == toy_config
        assert stats.warps_per_sm > 0
        assert stats.wave_cycles > 0
        assert stats.kernel_cycles >= stats.wave_cycles

    def test_profile_totals_consistent(self, toy_profiled):
        profile = toy_profiled.profile
        assert profile.total_samples == profile.active_samples + profile.latency_samples
        assert 0.0 <= profile.stall_ratio <= 1.0
        assert profile.stall_ratio + profile.active_ratio == pytest.approx(1.0)

    def test_stalls_by_reason_includes_memory_dependency(self, toy_profiled):
        reasons = toy_profiled.profile.stalls_by_reason()
        assert reasons.get(StallReason.MEMORY_DEPENDENCY, 0) > 0

    def test_issue_samples_at_known_instruction(self, toy_profiled):
        profile = toy_profiled.profile
        assert any(entry.issue_samples > 0 for entry in profile.instructions.values())

    def test_unknown_kernel_rejected(self, toy_cubin):
        profiler = Profiler(VoltaV100, sample_period=8)
        with pytest.raises(KeyError):
            profiler.profile(toy_cubin, "missing_kernel", LaunchConfig(1, 32))

    def test_profile_json_roundtrip(self, toy_profiled):
        profile = toy_profiled.profile
        restored = KernelProfile.from_json(profile.to_json())
        assert restored.total_samples == profile.total_samples
        assert restored.stalls_by_reason() == profile.stalls_by_reason()
        assert restored.statistics.wave_cycles == profile.statistics.wave_cycles
        key = next(iter(profile.instructions))
        assert restored.instructions[key].issue_samples == profile.instructions[key].issue_samples

    def test_dump_and_load(self, toy_profiled, tmp_path):
        path = Profiler.dump(toy_profiled, tmp_path)
        assert path.exists()
        restored = Profiler.load_profile(path)
        assert restored.kernel == "toy_kernel"
        assert restored.total_samples == toy_profiled.profile.total_samples

    def test_grid_limited_launch_uses_fewer_blocks_on_sm(self, toy_cubin, toy_workload):
        profiler = Profiler(VoltaV100, sample_period=8)
        result = profiler.profile(toy_cubin, "toy_kernel", LaunchConfig(16, 128), toy_workload)
        assert result.occupancy.blocks_per_sm == 1
        assert result.profile.statistics.occupancy_limiter == "grid"

    def test_grid_position_dependent_workloads_profile_cleanly(self, toy_cubin):
        # Per-warp trip counts that depend on the grid position exercise the
        # representative-block selection of the profiler.
        workload = WorkloadSpec(
            loop_trip_counts={12: lambda warp, total: 24 if warp < total // 2 else 2}
        )
        profiler = Profiler(VoltaV100, sample_period=8)
        result = profiler.profile(toy_cubin, "toy_kernel", LaunchConfig(320, 128), workload)
        assert result.profile.total_samples > 0
        assert result.simulation.issued_instructions > 0
