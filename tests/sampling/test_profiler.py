"""Tests for the profiler facade and the profile data model."""

import dataclasses
import math

import pytest

from repro.arch.machine import VoltaV100
from repro.sampling.gpu import GpuSimulationResult
from repro.sampling.profiler import Profiler, representative_blocks
from repro.sampling.sample import KernelProfile, LaunchConfig
from repro.sampling.stall_reasons import StallReason
from repro.sampling.workload import WorkloadSpec

#: A small Volta keeps whole-GPU profiles cheap: 4 SMs, and few enough warp
#: slots that modest grids still need several dispatch waves.
TinyVolta = dataclasses.replace(VoltaV100, num_sms=4, max_blocks_per_sm=2,
                                max_warps_per_sm=16)


class TestLaunchConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LaunchConfig(0, 32)
        with pytest.raises(ValueError):
            LaunchConfig(1, 0)

    def test_with_helpers(self):
        config = LaunchConfig(16, 256)
        assert config.with_blocks(32).grid_blocks == 32
        assert config.with_threads(512).threads_per_block == 512
        assert config.total_threads == 16 * 256


class TestProfiler:
    def test_profile_contains_launch_statistics(self, toy_profiled, toy_config):
        stats = toy_profiled.profile.statistics
        assert stats.kernel == "toy_kernel"
        assert stats.config == toy_config
        assert stats.warps_per_sm > 0
        assert stats.wave_cycles > 0
        assert stats.kernel_cycles >= stats.wave_cycles

    def test_profile_totals_consistent(self, toy_profiled):
        profile = toy_profiled.profile
        assert profile.total_samples == profile.active_samples + profile.latency_samples
        assert 0.0 <= profile.stall_ratio <= 1.0
        assert profile.stall_ratio + profile.active_ratio == pytest.approx(1.0)

    def test_stalls_by_reason_includes_memory_dependency(self, toy_profiled):
        reasons = toy_profiled.profile.stalls_by_reason()
        assert reasons.get(StallReason.MEMORY_DEPENDENCY, 0) > 0

    def test_issue_samples_at_known_instruction(self, toy_profiled):
        profile = toy_profiled.profile
        assert any(entry.issue_samples > 0 for entry in profile.instructions.values())

    def test_unknown_kernel_rejected(self, toy_cubin):
        profiler = Profiler(VoltaV100, sample_period=8)
        with pytest.raises(KeyError):
            profiler.profile(toy_cubin, "missing_kernel", LaunchConfig(1, 32))

    def test_profile_json_roundtrip(self, toy_profiled):
        profile = toy_profiled.profile
        restored = KernelProfile.from_json(profile.to_json())
        assert restored.total_samples == profile.total_samples
        assert restored.stalls_by_reason() == profile.stalls_by_reason()
        assert restored.statistics.wave_cycles == profile.statistics.wave_cycles
        key = next(iter(profile.instructions))
        assert restored.instructions[key].issue_samples == profile.instructions[key].issue_samples

    def test_dump_and_load(self, toy_profiled, tmp_path):
        path = Profiler.dump(toy_profiled, tmp_path)
        assert path.exists()
        restored = Profiler.load_profile(path)
        assert restored.kernel == "toy_kernel"
        assert restored.total_samples == toy_profiled.profile.total_samples

    def test_grid_limited_launch_uses_fewer_blocks_on_sm(self, toy_cubin, toy_workload):
        profiler = Profiler(VoltaV100, sample_period=8)
        result = profiler.profile(toy_cubin, "toy_kernel", LaunchConfig(16, 128), toy_workload)
        assert result.occupancy.blocks_per_sm == 1
        assert result.profile.statistics.occupancy_limiter == "grid"

    def test_representative_blocks_are_distinct_and_clamped(self):
        # blocks_per_sm > grid_blocks must not duplicate block ids (that
        # would simulate more resident blocks than the grid has).
        assert representative_blocks(3, 8) == [0, 1, 2]
        assert representative_blocks(1, 5) == [0]
        # Normal spreads stay distinct and cover the grid's span.
        spread = representative_blocks(100, 4)
        assert len(set(spread)) == 4
        assert spread[0] == 0 and spread[-1] == 75
        assert representative_blocks(7, 7) == list(range(7))

    def test_grid_position_dependent_workloads_profile_cleanly(self, toy_cubin):
        # Per-warp trip counts that depend on the grid position exercise the
        # representative-block selection of the profiler.
        workload = WorkloadSpec(
            loop_trip_counts={12: lambda warp, total: 24 if warp < total // 2 else 2}
        )
        profiler = Profiler(VoltaV100, sample_period=8)
        result = profiler.profile(toy_cubin, "toy_kernel", LaunchConfig(320, 128), workload)
        assert result.profile.total_samples > 0
        assert result.simulation.issued_instructions > 0


class TestSimulationScopes:
    """The whole-GPU scope and the launch shapes both scopes must handle."""

    def _profile(self, cubin, workload, config, scope, architecture=TinyVolta):
        profiler = Profiler(architecture, sample_period=8, simulation_scope=scope)
        return profiler.profile(cubin, "toy_kernel", config, workload)

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError):
            Profiler(VoltaV100, simulation_scope="per_warp")

    def test_whole_gpu_measures_instead_of_extrapolating(self, toy_cubin, toy_workload):
        config = LaunchConfig(grid_blocks=19, threads_per_block=128)
        profiled = self._profile(toy_cubin, toy_workload, config, "whole_gpu")
        statistics = profiled.profile.statistics
        simulation = profiled.simulation
        assert isinstance(simulation, GpuSimulationResult)
        assert statistics.simulation_scope == "whole_gpu"
        assert statistics.kernel_cycles == simulation.kernel_cycles
        assert statistics.wave_cycles == simulation.waves[0].cycles
        assert simulation.num_waves == math.ceil(
            19 / (TinyVolta.num_sms * profiled.occupancy.blocks_per_sm_limit)
        )

    def test_single_wave_still_extrapolates(self, toy_cubin, toy_workload):
        config = LaunchConfig(grid_blocks=19, threads_per_block=128)
        profiled = self._profile(toy_cubin, toy_workload, config, "single_wave")
        statistics = profiled.profile.statistics
        assert statistics.simulation_scope == "single_wave"
        assert statistics.kernel_cycles == pytest.approx(
            statistics.wave_cycles * max(1.0, profiled.occupancy.waves)
        )

    def test_scope_survives_profile_serialization(self, toy_cubin, toy_workload):
        config = LaunchConfig(grid_blocks=9, threads_per_block=64)
        profiled = self._profile(toy_cubin, toy_workload, config, "whole_gpu")
        restored = KernelProfile.from_json(profiled.profile.to_json())
        assert restored.statistics.simulation_scope == "whole_gpu"
        assert restored.statistics.kernel_cycles == profiled.profile.statistics.kernel_cycles
        assert restored.to_dict() == profiled.profile.to_dict()

    @pytest.mark.parametrize("scope", ["single_wave", "whole_gpu"])
    def test_grid_limited_launch(self, toy_cubin, toy_workload, scope):
        # Fewer blocks than SMs: limiter == "grid", waves < 1.
        config = LaunchConfig(grid_blocks=2, threads_per_block=128)
        profiled = self._profile(toy_cubin, toy_workload, config, scope)
        assert profiled.occupancy.limiter == "grid"
        assert profiled.occupancy.waves < 1.0
        assert profiled.profile.total_samples > 0
        statistics = profiled.profile.statistics
        if scope == "whole_gpu":
            # One under-full wave: measured == that wave, no rounding up.
            assert statistics.kernel_cycles == statistics.wave_cycles
            assert profiled.simulation.num_waves == 1
            assert profiled.simulation.waves[0].occupied_sms == 2
        else:
            # The single-wave estimate never extrapolates below one wave.
            assert statistics.kernel_cycles == statistics.wave_cycles

    @pytest.mark.parametrize("scope", ["single_wave", "whole_gpu"])
    def test_fractional_waves_launch(self, toy_cubin, toy_workload, scope):
        # capacity = 4 SMs x 2 blocks = 8 blocks/wave -> 20 blocks = 2.5 waves.
        config = LaunchConfig(grid_blocks=20, threads_per_block=128)
        profiled = self._profile(toy_cubin, toy_workload, config, scope)
        assert profiled.occupancy.waves == pytest.approx(2.5)
        assert profiled.profile.total_samples > 0
        if scope == "whole_gpu":
            simulation = profiled.simulation
            assert simulation.num_waves == 3
            assert simulation.waves[-1].blocks == 4
            assert simulation.waves[-1].occupied_sms == 4
            assert profiled.profile.statistics.kernel_cycles == sum(
                wave.cycles for wave in simulation.waves
            )

    @pytest.mark.parametrize("scope", ["single_wave", "whole_gpu"])
    def test_partial_last_warp_launch(self, toy_cubin, toy_workload, scope):
        # threads_per_block not a multiple of warp_size: ceil() adds a
        # partial warp to every block; both engines must stay consistent.
        config = LaunchConfig(grid_blocks=10, threads_per_block=100)
        profiled = self._profile(toy_cubin, toy_workload, config, scope)
        warps_per_block = math.ceil(100 / TinyVolta.warp_size)
        assert warps_per_block == 4
        assert profiled.profile.total_samples > 0
        if scope == "whole_gpu":
            total_warps = 10 * warps_per_block
            # All grid warps executed: issue totals count every warp's ops.
            assert profiled.simulation.issued_instructions > 0
            assert sum(w.blocks for w in profiled.simulation.waves) == 10
            assert total_warps == 40

    def test_whole_gpu_deterministic_across_runs(self, toy_cubin, toy_workload):
        config = LaunchConfig(grid_blocks=12, threads_per_block=128)
        first = self._profile(toy_cubin, toy_workload, config, "whole_gpu")
        second = self._profile(toy_cubin, toy_workload, config, "whole_gpu")
        assert first.profile.to_dict() == second.profile.to_dict()
