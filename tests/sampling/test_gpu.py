"""Tests for the whole-GPU multi-wave simulation engine."""

import dataclasses
import math

import pytest

from repro.arch.machine import VoltaV100
from repro.sampling.gpu import GpuSimulator
from repro.sampling.trace import generate_warp_trace
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import build_program_structure

#: A four-SM Volta so whole-GPU runs stay cheap while still exercising
#: multi-SM dispatch, waves and partial tails.
TinyVolta = dataclasses.replace(VoltaV100, num_sms=4)

WARPS_PER_BLOCK = 4
BLOCKS_PER_SM = 2
#: Wave capacity of the tiny GPU: 4 SMs x 2 blocks.
CAPACITY = TinyVolta.num_sms * BLOCKS_PER_SM


@pytest.fixture(scope="module")
def toy_structure(toy_cubin):
    return build_program_structure(toy_cubin)


def run_whole_gpu(structure, workload, grid_blocks, sample_period=8, **simulator_kwargs):
    total_warps = grid_blocks * WARPS_PER_BLOCK

    def trace_for_warp(global_warp_id):
        return generate_warp_trace(
            structure, "toy_kernel", workload, TinyVolta, global_warp_id, total_warps
        )

    simulator = GpuSimulator(TinyVolta, sample_period=sample_period, **simulator_kwargs)
    return simulator.simulate(
        "toy_kernel",
        trace_for_warp,
        grid_blocks=grid_blocks,
        warps_per_block=WARPS_PER_BLOCK,
        blocks_per_sm=BLOCKS_PER_SM,
    )


class TestDispatch:
    def test_full_grid_issues_every_warp(self, toy_structure, toy_workload):
        grid = 2 * CAPACITY + 3  # two full waves plus a partial tail
        result = run_whole_gpu(toy_structure, toy_workload, grid)
        total_warps = grid * WARPS_PER_BLOCK
        expected = sum(
            len(generate_warp_trace(toy_structure, "toy_kernel", toy_workload,
                                    TinyVolta, warp, total_warps))
            for warp in range(total_warps)
        )
        assert result.issued_instructions == expected

    def test_wave_count_covers_the_grid(self, toy_structure, toy_workload):
        for grid in (1, CAPACITY - 1, CAPACITY, CAPACITY + 1, 3 * CAPACITY):
            result = run_whole_gpu(toy_structure, toy_workload, grid)
            assert result.num_waves == math.ceil(grid / CAPACITY)
            assert sum(wave.blocks for wave in result.waves) == grid

    def test_partial_tail_wave_leaves_sms_idle(self, toy_structure, toy_workload):
        grid = CAPACITY + 3  # tail wave of 3 blocks on a 4-SM GPU
        result = run_whole_gpu(toy_structure, toy_workload, grid)
        assert result.num_waves == 2
        full, tail = result.waves
        assert full.occupied_sms == TinyVolta.num_sms
        assert tail.blocks == 3
        assert tail.occupied_sms == 3

    def test_kernel_cycles_is_the_sum_of_wave_maxima(self, toy_structure, toy_workload):
        result = run_whole_gpu(toy_structure, toy_workload, 2 * CAPACITY + 3)
        assert result.kernel_cycles == sum(wave.cycles for wave in result.waves)
        assert result.wave_cycles == result.waves[0].cycles
        for wave in result.waves:
            assert 0 < wave.fastest_sm_cycles <= wave.cycles
        # The throughput denominator counts every SM of every wave, bounded
        # by the per-wave extremes.
        assert result.simulated_sm_cycles >= sum(
            wave.fastest_sm_cycles * wave.occupied_sms for wave in result.waves
        )
        assert result.simulated_sm_cycles <= sum(
            wave.cycles * wave.occupied_sms for wave in result.waves
        )

    def test_grid_limited_launch_is_one_underfull_wave(self, toy_structure, toy_workload):
        result = run_whole_gpu(toy_structure, toy_workload, 2)
        assert result.num_waves == 1
        assert result.waves[0].occupied_sms == 2
        assert result.kernel_cycles == result.wave_cycles

    def test_input_validation(self, toy_structure, toy_workload):
        simulator = GpuSimulator(TinyVolta)
        with pytest.raises(ValueError):
            simulator.simulate("k", lambda w: [], grid_blocks=0,
                               warps_per_block=1, blocks_per_sm=1)
        with pytest.raises(ValueError):
            simulator.simulate("k", lambda w: [], grid_blocks=1,
                               warps_per_block=0, blocks_per_sm=1)


class TestMergedAggregates:
    def test_sample_totals_are_consistent(self, toy_structure, toy_workload):
        result = run_whole_gpu(toy_structure, toy_workload, CAPACITY + 3)
        assert result.total_samples == result.active_samples + result.latency_samples
        per_instruction = sum(
            sum(reasons.values()) for reasons in result.stall_counts.values()
        )
        assert per_instruction == result.latency_samples
        assert sum(result.issue_counts.values()) == result.active_samples

    def test_deterministic_across_runs(self, toy_structure):
        workload = WorkloadSpec(
            loop_trip_counts={12: lambda warp, total: 20 if warp % 3 == 0 else 4}
        )
        first = run_whole_gpu(toy_structure, workload, CAPACITY + 5)
        second = run_whole_gpu(toy_structure, workload, CAPACITY + 5)
        assert first.kernel_cycles == second.kernel_cycles
        assert first.stall_counts == second.stall_counts
        assert first.issue_counts == second.issue_counts
        assert first.issued_instructions == second.issued_instructions
        assert [dataclasses.asdict(w) for w in first.waves] == [
            dataclasses.asdict(w) for w in second.waves
        ]

    def test_keep_samples_rebases_cycles_onto_the_kernel_timeline(
        self, toy_structure, toy_workload
    ):
        result = run_whole_gpu(
            toy_structure, toy_workload, 2 * CAPACITY, keep_samples=True
        )
        assert len(result.samples) == result.total_samples
        assert {sample.sm_id for sample in result.samples} == set(
            range(TinyVolta.num_sms)
        )
        # Samples from the second wave must sit past the first wave's end.
        first_wave_end = result.waves[0].cycles
        assert any(sample.cycle >= first_wave_end for sample in result.samples)
        assert all(sample.cycle <= result.kernel_cycles for sample in result.samples)

    def test_imbalanced_grid_shows_cross_sm_variation(self, toy_structure):
        # The first half of the grid runs 10x longer than the second half:
        # within a wave some SMs finish early, so the wave maximum exceeds
        # the fastest SM's cycles.
        workload = WorkloadSpec(
            loop_trip_counts={12: lambda warp, total: 30 if warp < total // 2 else 3}
        )
        result = run_whole_gpu(toy_structure, workload, 2 * CAPACITY)
        spread = [wave.cycles - wave.fastest_sm_cycles for wave in result.waves]
        assert any(delta > 0 for delta in spread)

    def test_extrapolated_matches_single_wave_arithmetic(self, toy_structure, toy_workload):
        result = run_whole_gpu(toy_structure, toy_workload, 2 * CAPACITY)
        expected = result.wave_cycles * (2 * CAPACITY / CAPACITY)
        assert result.extrapolated_kernel_cycles == pytest.approx(expected)
