"""Tests for dynamic trace generation."""

import pytest

from repro.arch.machine import VoltaV100
from repro.sampling.trace import generate_warp_trace
from repro.sampling.workload import WorkloadSpec
from repro.structure.program import build_program_structure
from repro.workloads.apps import quicksilver
from repro.workloads.rodinia import myocyte


@pytest.fixture(scope="module")
def toy_structure(toy_cubin):
    return build_program_structure(toy_cubin)


def trace_for(structure, workload, warp_id=0):
    return generate_warp_trace(structure, "toy_kernel", workload, VoltaV100, warp_id, 16)


def test_loop_trip_count_controls_iterations(toy_structure):
    short = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 3}))
    long = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 12}))
    assert len(long) > len(short)
    assert sum(1 for op in long if op.opcode == "LDG") == 12
    assert sum(1 for op in short if op.opcode == "LDG") == 3


def test_trace_is_deterministic(toy_structure):
    workload = WorkloadSpec(loop_trip_counts={12: 5}, seed=3)
    a = trace_for(toy_structure, workload)
    b = trace_for(toy_structure, workload)
    assert [op.offset for op in a] == [op.offset for op in b]


def test_trace_ends_with_exit(toy_structure):
    trace = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 2}))
    assert trace[-1].opcode == "EXIT"


def test_memory_ops_get_latency_and_transactions(toy_structure):
    trace = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 2},
                                                  uncoalesced_lines={13},
                                                  uncoalesced_transactions=4))
    loads = [op for op in trace if op.opcode == "LDG"]
    assert all(op.latency > 100 for op in loads)
    assert all(op.transactions == 4 for op in loads)
    alu = [op for op in trace if op.opcode == "FFMA"]
    assert all(op.latency == 0 and op.transactions == 0 for op in alu)


def test_memory_latency_scale_applies(toy_structure):
    base = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 2}, seed=1))
    scaled = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 2}, seed=1,
                                                   memory_latency_scale=2.0))
    base_latency = [op.latency for op in base if op.opcode == "LDG"]
    scaled_latency = [op.latency for op in scaled if op.opcode == "LDG"]
    assert all(s > b for s, b in zip(scaled_latency, base_latency))


def test_max_trace_ops_bounds_runaway_loops(toy_structure):
    workload = WorkloadSpec(loop_trip_counts={12: 10_000_000}, max_trace_ops=500)
    trace = trace_for(toy_structure, workload)
    assert len(trace) == 500


def test_calls_descend_into_device_functions():
    setup = quicksilver.baseline()
    structure = build_program_structure(setup.cubin)
    trace = generate_warp_trace(structure, setup.kernel, setup.workload, VoltaV100, 0, 8)
    functions = {op.function for op in trace}
    assert "MC_Segment_Outcome" in functions
    assert "MacroscopicCrossSection" in functions


def test_fetch_stalls_charged_when_footprint_exceeds_icache():
    setup = myocyte.baseline()
    structure = build_program_structure(setup.cubin)
    assert structure.function(setup.kernel).function.code_size > VoltaV100.instruction_cache_bytes
    trace = generate_warp_trace(structure, setup.kernel, setup.workload, VoltaV100, 0, 8)
    assert any(op.fetch_stall > 0 for op in trace)


def test_no_fetch_stalls_for_small_kernels(toy_structure):
    trace = trace_for(toy_structure, WorkloadSpec(loop_trip_counts={12: 4}))
    assert all(op.fetch_stall == 0 for op in trace)
