"""The stdlib HTML dashboard: content, series shaping, empty states."""

from repro.evaluation.fleet.report import (
    bench_reference_entry,
    bench_throughput_series,
    load_bench_history,
    render_report,
    sweep_error_series,
)


def artifact(error=0.07, failures=0, complete=True, key="single_wave+flat+sm_70+p8"):
    return {
        "kind": "fleet_sweep",
        "schema_version": 1,
        "cases": ["a/one", "b/two"],
        "units": 2,
        "complete": complete,
        "missing": [] if complete else [{"case": "b/two", "config": key}],
        "failures_total": failures,
        "configurations": [
            {
                "config": {},
                "key": key,
                "rows": [{"case": "a/one"}],
                "failures": (
                    [{"case": "b/two", "error": "RuntimeError: boom"}]
                    if failures
                    else []
                ),
                "cases_ok": 2 - failures,
                "cases_failed": failures,
                "geomean_achieved": 2.0,
                "geomean_estimated": 1.9,
                "geomean_error": error,
                "mean_error": error,
                "total_samples": 42,
                "total_baseline_cycles": 1000.0,
            }
        ],
    }


class TestSeriesShaping:
    def test_error_series_tracks_configurations_across_sweeps(self):
        sweeps = [
            ("night-1", artifact(error=0.10)),
            ("night-2", artifact(error=0.05)),
        ]
        series, labels = sweep_error_series(sweeps)
        assert labels == ["night-1", "night-2"]
        assert series["single_wave+flat+sm_70+p8"] == [10.0, 5.0]

    def test_configuration_gaps_become_none(self):
        sweeps = [
            ("night-1", artifact(key="single_wave+flat+sm_70+p8")),
            ("night-2", artifact(key="whole_gpu+hierarchy+sm_70+p8")),
        ]
        series, _ = sweep_error_series(sweeps)
        assert series["single_wave+flat+sm_70+p8"][1] is None
        assert series["whole_gpu+hierarchy+sm_70+p8"][0] is None

    def test_bench_series_keys_by_block_identity(self):
        history = [
            {
                "recorded": "2026-08-07T03:23:00Z",
                "blocks": [
                    {"simulation_scope": "single_wave", "memory_model": "flat",
                     "simulator_backend": "vector", "cycles_per_second": 120000},
                    {"simulation_scope": "whole_gpu", "memory_model": "hierarchy",
                     "simulator_backend": "object", "cycles_per_second": 9000},
                ],
            }
        ]
        series, labels = bench_throughput_series(history)
        assert labels == ["2026-08-07"]
        assert series["single_wave+flat vector"] == [120000]
        assert series["whole_gpu+hierarchy object"] == [9000]

    def test_history_loader_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        path.write_text(
            '{"recorded": "a", "blocks": [{"cycles_per_second": 1}]}\n'
            "not json at all\n"
            '{"no_blocks": true}\n'
            '{"recorded": "b", "blocks": [{"cycles_per_second": 2}]}\n'
        )
        entries = load_bench_history(path)
        assert [e["recorded"] for e in entries] == ["a", "b"]
        assert load_bench_history(tmp_path / "missing.jsonl") == []

    def test_reference_fallback_is_one_pinned_entry(self):
        entry = bench_reference_entry(
            {"benchmark": "simulator_smoke",
             "measurements": [{"simulator_backend": "vector",
                               "cycles_per_second": 5}]}
        )
        assert entry["recorded"] == "pinned"
        assert entry["blocks"][0]["cycles_per_second"] == 5
        assert bench_reference_entry({"benchmark": "other"}) is None


class TestPage:
    def test_full_page_contents(self):
        page = render_report(
            [("night-1", artifact(failures=1, complete=False))],
            bench_history=[{"recorded": "pinned",
                            "blocks": [{"cycles_per_second": 100000}]}],
            generated="run 42",
        )
        assert page.startswith("<!DOCTYPE html>")
        assert "Fleet evaluation dashboard" in page
        assert page.count("<svg") == 2  # error trend + throughput trajectory
        assert "prefers-color-scheme: dark" in page
        assert "run 42" in page
        # Failure ledger and incomplete-coverage tile are visible.
        assert "RuntimeError: boom" in page
        assert "incomplete" in page
        # Every chart ships its data-table twin.
        assert page.count("Data table") == 2

    def test_empty_history_renders_without_charts(self):
        page = render_report([])
        assert "Fleet evaluation dashboard" in page
        assert "<svg" not in page

    def test_ninth_series_folds_into_the_table(self):
        # 9 configurations: only the 8 fixed palette slots are plotted; the
        # rest are named in a note and appear in the data table.
        sweeps = [(
            "night-1",
            {
                "configurations": [
                    {"key": f"config-{i}", "cases_ok": 1,
                     "geomean_error": 0.01 * (i + 1)}
                    for i in range(9)
                ],
                "units": 9, "complete": True, "missing": [],
                "failures_total": 0, "cases": [],
            },
        )]
        page = render_report(sweeps)
        assert "1 more series exceed the fixed palette" in page
        assert 'class="line s8"' not in page
        assert "config-8" in page  # still present, in the table
