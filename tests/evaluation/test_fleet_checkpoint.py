"""Checkpoint atomicity and the forgiving-load contract."""

import json

from repro.evaluation.fleet.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    ShardCheckpoint,
    UnitRecord,
    checkpoint_path,
    load_checkpoint,
    store_checkpoint,
)


def record(fingerprint="f" * 20, case="a/two", error=None):
    return UnitRecord(
        fingerprint=fingerprint,
        case_id=case,
        config_key="single_wave+flat+sm_70+p8",
        outcome=None if error else {"achieved_speedup": 1.5},
        error=error,
        duration=0.25,
    )


class TestRoundTrip:
    def test_store_then_load(self, tmp_path):
        checkpoint = ShardCheckpoint(plan_id="abc", shard=2)
        checkpoint.record(record("1" * 20))
        checkpoint.record(record("2" * 20, error="Traceback...\nValueError: x"))
        store_checkpoint(tmp_path, checkpoint)

        loaded, reason = load_checkpoint(tmp_path, "abc", 2)
        assert reason == ""
        assert loaded.entries.keys() == checkpoint.entries.keys()
        assert loaded.entries["1" * 20].ok
        assert not loaded.entries["2" * 20].ok
        assert loaded.entries["2" * 20].error.endswith("ValueError: x")

    def test_rewrite_leaves_no_temp_files(self, tmp_path):
        checkpoint = ShardCheckpoint(plan_id="abc", shard=0)
        for index in range(5):
            checkpoint.record(record(f"{index}" * 20))
            store_checkpoint(tmp_path, checkpoint)
        assert [p.name for p in tmp_path.iterdir()] == [
            checkpoint_path(tmp_path, 0).name
        ]

    def test_missing_is_fresh_without_complaint(self, tmp_path):
        loaded, reason = load_checkpoint(tmp_path, "abc", 0)
        assert loaded.entries == {}
        assert reason == ""


class TestUnusableFilesLoadAsAbsent:
    def test_truncated_json(self, tmp_path):
        path = checkpoint_path(tmp_path, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        good = ShardCheckpoint(plan_id="abc", shard=0)
        good.record(record())
        store_checkpoint(tmp_path, good)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])

        loaded, reason = load_checkpoint(tmp_path, "abc", 0)
        assert loaded.entries == {}
        assert "unusable checkpoint" in reason

    def test_wrong_plan(self, tmp_path):
        checkpoint = ShardCheckpoint(plan_id="other-plan", shard=0)
        checkpoint.record(record())
        store_checkpoint(tmp_path, checkpoint)
        loaded, reason = load_checkpoint(tmp_path, "abc", 0)
        assert loaded.entries == {}
        assert "other-plan" in reason

    def test_wrong_schema(self, tmp_path):
        checkpoint = ShardCheckpoint(plan_id="abc", shard=0)
        store_checkpoint(tmp_path, checkpoint)
        path = checkpoint_path(tmp_path, 0)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == CHECKPOINT_SCHEMA_VERSION
        payload["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        loaded, reason = load_checkpoint(tmp_path, "abc", 0)
        assert loaded.entries == {}
        assert "schema version" in reason

    def test_entry_key_fingerprint_mismatch(self, tmp_path):
        checkpoint = ShardCheckpoint(plan_id="abc", shard=0)
        checkpoint.record(record("1" * 20))
        store_checkpoint(tmp_path, checkpoint)
        path = checkpoint_path(tmp_path, 0)
        payload = json.loads(path.read_text())
        payload["entries"]["9" * 20] = payload["entries"].pop("1" * 20)
        path.write_text(json.dumps(payload))
        loaded, reason = load_checkpoint(tmp_path, "abc", 0)
        assert loaded.entries == {}
        assert "fingerprint" in reason

    def test_shard_mismatch_between_name_and_payload(self, tmp_path):
        # shard-0003's bytes copied over shard-0001: content wins, file is
        # ignored for shard 1 rather than replaying another shard's units.
        checkpoint = ShardCheckpoint(plan_id="abc", shard=3)
        checkpoint.record(record())
        store_checkpoint(tmp_path, checkpoint)
        checkpoint_path(tmp_path, 1).write_bytes(
            checkpoint_path(tmp_path, 3).read_bytes()
        )
        loaded, reason = load_checkpoint(tmp_path, "abc", 1)
        assert loaded.entries == {}
        assert "records shard" in reason
