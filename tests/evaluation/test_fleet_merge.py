"""Merge properties: order independence, fixed point, shard independence."""

import pytest

from repro.evaluation.fleet.checkpoint import ShardCheckpoint, UnitRecord
from repro.evaluation.fleet.merge import (
    artifact_json,
    merge_checkpoints,
)
from repro.evaluation.fleet.plan import (
    EvaluationPlan,
    FleetError,
    SweepConfiguration,
)


def make_plan(num_shards=1, cases=("a/one", "b/two", "c/three")):
    return EvaluationPlan(
        case_ids=tuple(cases),
        configurations=(SweepConfiguration(),
                        SweepConfiguration(memory_model="hierarchy")),
        num_shards=num_shards,
    )


def filled_checkpoints(plan, fail=(), skip=(), duration=0.0):
    """Complete checkpoints for ``plan`` with synthetic outcomes."""
    checkpoints = [
        ShardCheckpoint(plan_id=plan.plan_id, shard=shard)
        for shard in range(plan.num_shards)
    ]
    for unit in plan.units():
        if unit.case_id in skip:
            continue
        record = UnitRecord(
            fingerprint=unit.fingerprint,
            case_id=unit.case_id,
            config_key=unit.config.key,
            duration=duration,
        )
        if unit.case_id in fail:
            record.error = "Traceback ...\nRuntimeError: boom"
        else:
            seed = (len(unit.case_id) % 3) + 1
            record.outcome = {
                "case_id": unit.case_id,
                "baseline_cycles": 100.0 * seed,
                "optimized_cycles": 50.0 * seed,
                "achieved_speedup": 2.0,
                "estimated_speedup": 1.5 * seed,
                "error": 0.05 * seed,
                "optimizer_rank": 1,
                "total_samples": 7 * seed,
            }
        checkpoints[plan.shard_of(unit)].record(record)
    return checkpoints


class TestProperties:
    def test_order_independent(self):
        plan = make_plan(num_shards=3)
        checkpoints = filled_checkpoints(plan)
        forward = merge_checkpoints(plan, checkpoints)
        backward = merge_checkpoints(plan, list(reversed(checkpoints)))
        assert artifact_json(forward.artifact) == artifact_json(backward.artifact)

    def test_fixed_point(self):
        plan = make_plan(num_shards=2)
        checkpoints = filled_checkpoints(plan, fail={"b/two"})
        first = artifact_json(merge_checkpoints(plan, checkpoints).artifact)
        second = artifact_json(merge_checkpoints(plan, checkpoints).artifact)
        assert first == second

    def test_shard_count_never_shows_in_the_artifact(self):
        # The same surface partitioned 1-wide and 5-wide folds to identical
        # bytes — the property the CI fleet-smoke asserts end to end.
        narrow = make_plan(num_shards=1)
        wide = make_plan(num_shards=5)
        narrow_bytes = artifact_json(
            merge_checkpoints(narrow, filled_checkpoints(narrow)).artifact
        )
        wide_bytes = artifact_json(
            merge_checkpoints(wide, filled_checkpoints(wide)).artifact
        )
        assert narrow_bytes == wide_bytes

    def test_durations_never_show_in_the_artifact(self):
        plan = make_plan()
        fast = merge_checkpoints(plan, filled_checkpoints(plan, duration=0.1))
        slow = merge_checkpoints(plan, filled_checkpoints(plan, duration=9.9))
        assert artifact_json(fast.artifact) == artifact_json(slow.artifact)


class TestLedger:
    def test_failures_are_ledgered_per_configuration(self):
        plan = make_plan()
        outcome = merge_checkpoints(plan, filled_checkpoints(plan, fail={"b/two"}))
        assert outcome.complete
        assert outcome.failures == 2  # one per configuration
        for config in outcome.artifact["configurations"]:
            assert config["cases_failed"] == 1
            (failure,) = config["failures"]
            assert failure["case"] == "b/two"
            assert failure["error"] == "RuntimeError: boom"
        assert outcome.artifact["failures_total"] == 2

    def test_missing_units_are_ledgered(self):
        plan = make_plan()
        outcome = merge_checkpoints(plan, filled_checkpoints(plan, skip={"c/three"}))
        assert not outcome.complete
        assert sorted(outcome.missing) == [
            ("c/three", "single_wave+flat+sm_70+p8"),
            ("c/three", "single_wave+hierarchy+sm_70+p8"),
        ]
        assert outcome.artifact["complete"] is False
        assert len(outcome.artifact["missing"]) == 2

    def test_geomeans_mirror_table3_conventions(self):
        plan = make_plan()
        outcome = merge_checkpoints(plan, filled_checkpoints(plan))
        for config in outcome.artifact["configurations"]:
            assert config["cases_ok"] == 3
            assert config["geomean_achieved"] == pytest.approx(2.0)
            assert config["geomean_error"] > 0.0  # floored, never zero


class TestRobustness:
    def test_wrong_plan_checkpoint_is_an_infra_error(self):
        plan = make_plan()
        alien = ShardCheckpoint(plan_id="someone-else", shard=0)
        with pytest.raises(FleetError, match="belongs to plan"):
            merge_checkpoints(plan, [alien])

    def test_duplicate_entries_resolve_deterministically(self):
        plan = make_plan(num_shards=1)
        (checkpoint,) = filled_checkpoints(plan)
        # A hand-copied second checkpoint holding a *different* outcome for
        # an already-covered unit must not change the artifact: lower shard
        # wins, and the artifact only depends on the entry set.
        rogue = ShardCheckpoint(plan_id=plan.plan_id, shard=0)
        unit = plan.units()[0]
        rogue.record(UnitRecord(
            fingerprint=unit.fingerprint, case_id=unit.case_id,
            config_key=unit.config.key,
            outcome={"achieved_speedup": 99.0, "estimated_speedup": 99.0,
                     "error": 0.99, "baseline_cycles": 1.0,
                     "optimized_cycles": 1.0, "optimizer_rank": None,
                     "total_samples": 0},
        ))
        clean = artifact_json(merge_checkpoints(plan, [checkpoint]).artifact)
        with_rogue = artifact_json(
            merge_checkpoints(plan, [checkpoint, rogue]).artifact
        )
        assert clean == with_rogue

    def test_entries_outside_the_plan_are_dropped(self):
        plan = make_plan()
        checkpoints = filled_checkpoints(plan)
        checkpoints[0].record(UnitRecord(
            fingerprint="f" * 20, case_id="x/alien",
            config_key="single_wave+flat+sm_70+p8",
            outcome={"achieved_speedup": 1.0},
        ))
        outcome = merge_checkpoints(plan, checkpoints)
        assert outcome.complete
        assert "x/alien" not in artifact_json(outcome.artifact)
