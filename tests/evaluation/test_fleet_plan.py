"""The fleet plan: determinism, the disjoint cover, and the wire form."""

import json

import pytest

from repro.evaluation.fleet.plan import (
    EvaluationPlan,
    FleetError,
    SweepConfiguration,
    WorkUnit,
    build_plan,
)


def make_plan(num_shards=3, cases=("z/one", "a/two", "m/three"), configs=None):
    if configs is None:
        configs = (
            SweepConfiguration(),
            SweepConfiguration(simulation_scope="whole_gpu",
                               memory_model="hierarchy"),
        )
    return EvaluationPlan(case_ids=tuple(cases), configurations=tuple(configs),
                          num_shards=num_shards)


class TestPlanDeterminism:
    def test_input_order_never_changes_the_plan(self):
        configs = (SweepConfiguration(),
                   SweepConfiguration(memory_model="hierarchy"))
        forward = make_plan(cases=("a/two", "m/three", "z/one"), configs=configs)
        backward = make_plan(cases=("z/one", "m/three", "a/two"),
                             configs=tuple(reversed(configs)))
        assert forward == backward
        assert forward.plan_id == backward.plan_id
        assert forward.to_json() == backward.to_json()

    def test_duplicate_cases_are_collapsed(self):
        plan = make_plan(cases=("a/two", "a/two", "z/one"))
        assert plan.case_ids == ("a/two", "z/one")

    def test_duplicate_configurations_are_rejected(self):
        with pytest.raises(FleetError, match="duplicate"):
            make_plan(configs=(SweepConfiguration(), SweepConfiguration()))

    def test_different_surface_different_plan_id(self):
        assert make_plan().plan_id != make_plan(cases=("z/one",)).plan_id
        assert make_plan(num_shards=3).plan_id != make_plan(num_shards=4).plan_id

    def test_fingerprints_are_stable_across_shard_counts(self):
        # A unit's identity must not depend on how the plan is partitioned,
        # or checkpoints could never survive a re-plan at another width.
        narrow = make_plan(num_shards=1)
        wide = make_plan(num_shards=7)
        assert [u.fingerprint for u in narrow.units()] == [
            u.fingerprint for u in wide.units()
        ]

    def test_fingerprint_digests_every_knob(self):
        base = WorkUnit("a/two", SweepConfiguration())
        assert base.fingerprint != WorkUnit("z/one", SweepConfiguration()).fingerprint
        for variant in (
            SweepConfiguration(simulation_scope="whole_gpu"),
            SweepConfiguration(memory_model="hierarchy"),
            SweepConfiguration(arch_flag="sm_80"),
            SweepConfiguration(sample_period=16),
            SweepConfiguration(simulator_backend="object"),
        ):
            assert WorkUnit("a/two", variant).fingerprint != base.fingerprint


class TestPartition:
    def test_shards_are_a_disjoint_cover(self):
        plan = make_plan(num_shards=4)
        seen = []
        for shard in range(plan.num_shards):
            seen.extend(plan.shard_units(shard))
        assert sorted(u.fingerprint for u in seen) == sorted(
            u.fingerprint for u in plan.units()
        )
        assert len(seen) == len(plan.units())
        for unit in plan.units():
            assert unit in plan.shard_units(plan.shard_of(unit))

    def test_single_shard_holds_everything(self):
        plan = make_plan(num_shards=1)
        assert plan.shard_units(0) == plan.units()

    def test_shard_out_of_range(self):
        plan = make_plan(num_shards=2)
        with pytest.raises(FleetError, match="out of range"):
            plan.shard_units(2)

    def test_matrix_omits_empty_shards(self):
        # 1 unit across 5 shards: exactly one leg, and it names its shard.
        plan = make_plan(num_shards=5, cases=("z/one",),
                         configs=(SweepConfiguration(),))
        include = plan.matrix_include()
        assert len(include) == 1
        (leg,) = include
        assert leg["units"] == 1
        assert leg["name"] == f"shard-{leg['shard']}"
        assert plan.shard_units(leg["shard"])

    def test_matrix_units_sum_to_the_plan(self):
        plan = make_plan(num_shards=3)
        include = plan.matrix_include()
        assert sum(leg["units"] for leg in include) == len(plan.units())


class TestWireForm:
    def test_round_trip(self):
        plan = make_plan()
        reloaded = EvaluationPlan.from_dict(json.loads(plan.to_json()))
        assert reloaded == plan
        assert reloaded.plan_id == plan.plan_id

    def test_tampered_plan_is_rejected(self):
        payload = make_plan().to_dict()
        payload["cases"] = list(payload["cases"])[:-1]
        with pytest.raises(FleetError, match="plan id mismatch"):
            EvaluationPlan.from_dict(payload)

    def test_wrong_kind_and_schema_are_rejected(self):
        payload = make_plan().to_dict()
        with pytest.raises(FleetError, match="fleet_plan"):
            EvaluationPlan.from_dict({**payload, "kind": "something"})
        with pytest.raises(FleetError, match="schema version"):
            EvaluationPlan.from_dict({**payload, "schema_version": 99})
        with pytest.raises(FleetError, match="fingerprint version"):
            EvaluationPlan.from_dict({**payload, "fingerprint_version": 99})


class TestBuildPlan:
    def test_unknown_case_fails_at_plan_time(self):
        with pytest.raises(FleetError, match="unknown benchmark case"):
            build_plan(case_ids=["rodinia/no-such-case:nope"])

    def test_registry_default_with_limit(self):
        plan = build_plan(limit=3, num_shards=2)
        assert len(plan.case_ids) == 3
        assert len(plan.units()) == 3

    def test_bad_configuration_values(self):
        with pytest.raises(FleetError, match="sample_period"):
            SweepConfiguration(sample_period=0)
        with pytest.raises(Exception):
            SweepConfiguration(simulation_scope="half_wave")
