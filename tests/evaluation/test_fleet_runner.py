"""The shard runner's resume contract, driven by injected fake executes.

The real-process SIGKILL proof — kill the CLI mid-shard, resume it, and
require the merged artifact byte-identical to an uninterrupted run — lives
in ``test_fleet_cli.py`` where a subprocess is already in play.
"""

import pytest

from repro.evaluation.fleet.checkpoint import load_checkpoint
from repro.evaluation.fleet.merge import merge_checkpoints
from repro.evaluation.fleet.plan import (
    EvaluationPlan,
    FleetError,
    SweepConfiguration,
)
from repro.evaluation.fleet.runner import CaseFailure, ShardRunner


def make_plan(num_shards=1, cases=("a/one", "b/two", "c/three", "d/four")):
    return EvaluationPlan(
        case_ids=tuple(cases),
        configurations=(SweepConfiguration(),),
        num_shards=num_shards,
    )


def outcome_for(unit):
    return {
        "case_id": unit.case_id,
        "baseline_cycles": 100.0,
        "optimized_cycles": 50.0,
        "achieved_speedup": 2.0,
        "estimated_speedup": 1.8,
        "error": 0.1,
        "optimizer_rank": 1,
        "total_samples": 10,
    }


class CountingExecute:
    def __init__(self, fail=()):
        self.calls = []
        self.fail = set(fail)

    def __call__(self, unit):
        self.calls.append(unit.case_id)
        if unit.case_id in self.fail:
            raise CaseFailure("Traceback (most recent call last):\n"
                              f"RuntimeError: {unit.case_id} broke")
        return outcome_for(unit)


class TestResume:
    def test_completed_units_are_never_re_executed(self, tmp_path):
        plan = make_plan()
        first = CountingExecute()
        summary = ShardRunner(plan, 0, tmp_path, execute=first,
                              stop_after=2).run()
        assert summary.interrupted and summary.executed == 2
        assert not summary.complete

        second = CountingExecute()
        resumed = ShardRunner(plan, 0, tmp_path, execute=second).run()
        assert resumed.skipped == 2
        assert resumed.executed == 2
        assert resumed.complete
        # The resumed invocation ran only the units the first one missed.
        assert sorted(first.calls + second.calls) == sorted(
            u.case_id for u in plan.shard_units(0)
        )
        assert not set(first.calls) & set(second.calls)

    def test_fully_complete_shard_executes_nothing(self, tmp_path):
        plan = make_plan()
        ShardRunner(plan, 0, tmp_path, execute=CountingExecute()).run()
        again = CountingExecute()
        summary = ShardRunner(plan, 0, tmp_path, execute=again).run()
        assert again.calls == []
        assert summary.skipped == summary.total
        assert summary.complete

    def test_case_failures_are_checkpointed_as_data(self, tmp_path):
        plan = make_plan()
        execute = CountingExecute(fail={"b/two"})
        summary = ShardRunner(plan, 0, tmp_path, execute=execute).run()
        assert summary.failed == ["b/two"]
        assert summary.complete

        # A resume does NOT retry the failure — it is a recorded result.
        again = CountingExecute()
        resumed = ShardRunner(plan, 0, tmp_path, execute=again).run()
        assert again.calls == []
        assert resumed.failed == ["b/two"]

    def test_infra_error_propagates_and_records_nothing(self, tmp_path):
        plan = make_plan()

        calls = []

        def flaky(unit):
            calls.append(unit.case_id)
            if len(calls) == 2:
                raise ConnectionError("daemon went away")
            return outcome_for(unit)

        with pytest.raises(ConnectionError):
            ShardRunner(plan, 0, tmp_path, execute=flaky).run()
        checkpoint, _ = load_checkpoint(tmp_path, plan.plan_id, 0)
        # Unit 1 completed and is checkpointed; the in-flight unit 2 is not.
        assert len(checkpoint.entries) == 1

        summary = ShardRunner(plan, 0, tmp_path,
                              execute=CountingExecute()).run()
        assert summary.skipped == 1
        assert summary.executed == 3
        assert summary.complete

    def test_orphaned_checkpoint_restarts_with_a_note(self, tmp_path):
        plan = make_plan()
        ShardRunner(plan, 0, tmp_path, execute=CountingExecute()).run()
        other = make_plan(cases=("x/nine", "y/ten"))
        summary = ShardRunner(other, 0, tmp_path,
                              execute=CountingExecute()).run()
        assert summary.skipped == 0
        assert "written for plan" in summary.resume_note


class TestShardScope:
    def test_runner_touches_only_its_shard(self, tmp_path):
        plan = make_plan(num_shards=3)
        for shard in range(3):
            execute = CountingExecute()
            ShardRunner(plan, shard, tmp_path, execute=execute).run()
            assert sorted(execute.calls) == sorted(
                u.case_id for u in plan.shard_units(shard)
            )
        outcome = merge_checkpoints(
            plan, [load_checkpoint(tmp_path, plan.plan_id, s)[0]
                   for s in range(3)]
        )
        assert outcome.complete

    def test_empty_shard_still_writes_its_checkpoint_file(self, tmp_path):
        # 1 case over 4 shards leaves shards empty; CI uploads the file
        # unconditionally, so it must exist even with nothing to record.
        plan = make_plan(num_shards=4, cases=("a/one",))
        empty = [s for s in range(4) if not plan.shard_units(s)]
        assert empty
        summary = ShardRunner(plan, empty[0], tmp_path,
                              execute=CountingExecute()).run()
        assert summary.total == 0 and summary.complete
        from repro.evaluation.fleet.checkpoint import checkpoint_path
        assert checkpoint_path(tmp_path, empty[0]).exists()

    def test_shard_out_of_range(self, tmp_path):
        with pytest.raises(FleetError, match="out of range"):
            ShardRunner(make_plan(num_shards=2), 2, tmp_path,
                        execute=CountingExecute())


class TestKnobValidation:
    def test_bad_stop_after_and_kill_after(self, tmp_path):
        plan = make_plan()
        with pytest.raises(FleetError):
            ShardRunner(plan, 0, tmp_path, stop_after=0)
        with pytest.raises(FleetError):
            ShardRunner(plan, 0, tmp_path, kill_after=0)
