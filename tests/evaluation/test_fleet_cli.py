"""End-to-end CLI tests, including the real-SIGKILL resume proof.

The centerpiece mirrors the CI ``fleet-smoke`` leg in miniature: a real
``python -m repro.evaluation.fleet run`` subprocess is SIGKILLed mid-shard
by its own ``--kill-after`` fault injection, resumed from the checkpoint,
and the merged artifact must be byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.evaluation.exitcodes import (
    EXIT_CASES_FAILED,
    EXIT_INCOMPLETE,
    EXIT_INFRA,
    EXIT_OK,
)
from repro.evaluation.fleet.__main__ import main as fleet_main

REPO = Path(__file__).resolve().parent.parent.parent

pytestmark = pytest.mark.xdist_group("fleet_cli")


def fleet(args, cwd):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.evaluation.fleet", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("fleet-cli")


class TestKillAndResume:
    """The acceptance criterion, against real processes."""

    @pytest.fixture(scope="class")
    def sweep(self, workdir):
        plan_args = ["plan", "--shards", "1", "--limit", "2",
                     "--scope", "single_wave", "--memory-model", "flat",
                     "--out", "plan.json"]
        assert fleet(plan_args, workdir).returncode == EXIT_OK
        return workdir

    def test_kill_resume_merge_is_byte_identical(self, sweep):
        run = ["run", "--plan", "plan.json", "--checkpoint-dir", "ckpt",
               "--cache-dir", "cache", "--shard", "0"]

        killed = fleet(run + ["--kill-after", "1"], sweep)
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        # Strict merge refuses the torn sweep with the resume exit code and
        # writes nothing.
        merge = ["merge", "--plan", "plan.json", "--checkpoint-dir", "ckpt",
                 "--out", "torn.json"]
        torn = fleet(merge, sweep)
        assert torn.returncode == EXIT_INCOMPLETE, torn.stderr
        assert "resume the shards" in torn.stderr
        assert not (sweep / "torn.json").exists()

        # Resume: exactly the one finished unit is skipped.
        resumed = fleet(run, sweep)
        assert resumed.returncode == EXIT_OK, resumed.stderr
        assert "resuming: 1 of 2" in resumed.stderr

        merged = fleet(["merge", "--plan", "plan.json", "--checkpoint-dir",
                        "ckpt", "--out", "killed.json"], sweep)
        assert merged.returncode == EXIT_OK, merged.stderr

        # Control: the same plan run uninterrupted in a fresh checkpoint dir.
        control = fleet(["run", "--plan", "plan.json",
                         "--checkpoint-dir", "ckpt-clean",
                         "--cache-dir", "cache", "--shard", "0"], sweep)
        assert control.returncode == EXIT_OK, control.stderr
        assert fleet(["merge", "--plan", "plan.json", "--checkpoint-dir",
                      "ckpt-clean", "--out", "clean.json"],
                     sweep).returncode == EXIT_OK
        assert (sweep / "killed.json").read_bytes() == (
            sweep / "clean.json"
        ).read_bytes()

    def test_report_over_the_merged_artifact(self, sweep):
        result = fleet(["report", "--artifact", "killed.json",
                        "--bench", str(REPO / "BENCH_simulator.json"),
                        "--out", "report.html"], sweep)
        assert result.returncode == EXIT_OK, result.stderr
        page = (sweep / "report.html").read_text()
        assert "Fleet evaluation dashboard" in page
        assert "<svg" in page


class TestExitCodes:
    def test_plan_usage_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            fleet_main(["plan", "--shards", "0", "--out",
                        str(tmp_path / "p.json")])
        assert excinfo.value.code == 2  # argparse usage

    def test_unknown_case_is_infra(self, tmp_path, capsys):
        status = fleet_main(["plan", "--case", "rodinia/no-such:case",
                             "--out", str(tmp_path / "p.json")])
        assert status == EXIT_INFRA
        assert "unknown benchmark case" in capsys.readouterr().err

    def test_missing_plan_is_infra(self, tmp_path, capsys):
        status = fleet_main(["run", "--plan", str(tmp_path / "absent.json"),
                             "--shard", "0",
                             "--checkpoint-dir", str(tmp_path / "ckpt")])
        assert status == EXIT_INFRA

    def test_stop_after_exits_incomplete(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        assert fleet_main(["plan", "--shards", "1", "--limit", "2",
                           "--out", str(plan_path)]) == EXIT_OK
        status = fleet_main(["run", "--plan", str(plan_path), "--shard", "0",
                             "--checkpoint-dir", str(tmp_path / "ckpt"),
                             "--cache-dir", str(tmp_path / "cache"),
                             "--stop-after", "1"])
        assert status == EXIT_INCOMPLETE

    def test_allow_incomplete_merges_partial_coverage(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        fleet_main(["plan", "--shards", "1", "--limit", "2",
                    "--out", str(plan_path)])
        fleet_main(["run", "--plan", str(plan_path), "--shard", "0",
                    "--checkpoint-dir", str(tmp_path / "ckpt"),
                    "--cache-dir", str(tmp_path / "cache"),
                    "--stop-after", "1"])
        out = tmp_path / "partial.json"
        status = fleet_main(["merge", "--plan", str(plan_path),
                             "--checkpoint-dir", str(tmp_path / "ckpt"),
                             "--allow-incomplete", "--out", str(out)])
        assert status == EXIT_INCOMPLETE
        artifact = json.loads(out.read_text())
        assert artifact["complete"] is False
        assert len(artifact["missing"]) == 1

    def test_case_failures_exit_3(self, tmp_path, monkeypatch, capsys):
        from repro.evaluation.fleet import runner as runner_module

        plan_path = tmp_path / "plan.json"
        fleet_main(["plan", "--shards", "1", "--limit", "1",
                    "--out", str(plan_path)])

        def always_fails(advisor, unit):
            raise runner_module.CaseFailure(
                "Traceback ...\nRuntimeError: injected")

        monkeypatch.setattr(runner_module, "evaluate_unit", always_fails)
        status = fleet_main(["run", "--plan", str(plan_path), "--shard", "0",
                             "--checkpoint-dir", str(tmp_path / "ckpt")])
        assert status == EXIT_CASES_FAILED
        # ...and the merge carries the same verdict.
        status = fleet_main(["merge", "--plan", str(plan_path),
                             "--checkpoint-dir", str(tmp_path / "ckpt"),
                             "--out", str(tmp_path / "sweep.json")])
        assert status == EXIT_CASES_FAILED


class TestTable3ExitCodes:
    """The satellite fix: table3 distinguishes red data from a broken run."""

    def test_case_failures_exit_3(self, monkeypatch, capsys):
        from repro.evaluation import table3 as table3_module

        result = table3_module.Table3Result(
            rows=[], failures=[("a/one", "Traceback ...\nRuntimeError: x")]
        )
        monkeypatch.setattr(table3_module, "evaluate_table3",
                            lambda *args, **kwargs: result)
        assert table3_module.main(["--limit", "1"]) == EXIT_CASES_FAILED

    def test_harness_exception_exits_1(self, monkeypatch, capsys):
        from repro.evaluation import table3 as table3_module

        def explodes(*args, **kwargs):
            raise OSError("no space left on device")

        monkeypatch.setattr(table3_module, "evaluate_table3", explodes)
        assert table3_module.main(["--limit", "1"]) == EXIT_INFRA
        assert "retry the run" in capsys.readouterr().err

    def test_clean_sweep_exits_0(self, tmp_path, capsys):
        from repro.evaluation import table3 as table3_module

        status = table3_module.main(
            ["--limit", "1", "--cache-dir", str(tmp_path / "cache"),
             "--text", str(tmp_path / "table.txt")]
        )
        assert status == EXIT_OK
