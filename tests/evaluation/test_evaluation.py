"""Tests for the evaluation harness (Table 3, Figure 7, Figure 1)."""

import pytest

from repro.evaluation.figure1 import sampling_model_demo
from repro.evaluation.figure7 import evaluate_figure7, format_figure7
from repro.evaluation.metrics import geometric_mean, relative_error
from repro.evaluation.table3 import evaluate_case, evaluate_table3, format_table3
from repro.workloads.registry import case_by_name


class TestMetrics:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([]) == 1.0

    def test_relative_error(self):
        assert relative_error(1.2, 1.0) == pytest.approx(0.2)
        assert relative_error(1.0, 0.0) == 0.0


class TestTable3:
    @pytest.fixture(scope="class")
    def gaussian_row(self):
        return evaluate_case(case_by_name("rodinia/gaussian:thread_increase"))

    def test_row_contains_achieved_and_estimated_speedups(self, gaussian_row):
        assert gaussian_row.achieved_speedup > 1.0
        assert gaussian_row.estimated_speedup > 1.0
        assert gaussian_row.baseline_cycles > gaussian_row.optimized_cycles
        assert gaussian_row.error >= 0.0

    def test_gaussian_is_the_largest_win_as_in_the_paper(self, gaussian_row):
        assert gaussian_row.achieved_speedup > 2.0

    def test_expected_optimizer_is_ranked(self, gaussian_row):
        assert gaussian_row.optimizer_rank is not None
        assert gaussian_row.optimizer_rank <= 2

    def test_evaluate_subset_and_format(self):
        cases = [case_by_name("rodinia/backprop:warp_balance")]
        result = evaluate_table3(cases)
        assert len(result.rows) == 1
        assert result.geomean_achieved >= 1.0
        text = format_table3(result)
        assert "rodinia/backprop" in text
        assert "geomean" in text

    def test_aggregate_row_prints_the_geometric_mean_error(self):
        # The row is labeled "geomean", so every aggregate in it must be the
        # geometric mean — including the error column (regression: it used
        # to print the arithmetic mean_error under the geomean label).
        cases = [case_by_name("rodinia/backprop:warp_balance"),
                 case_by_name("rodinia/gaussian:thread_increase")]
        result = evaluate_table3(cases)
        assert len(result.rows) == 2
        geomean_line = format_table3(result).splitlines()[-1]
        assert geomean_line.startswith("geomean")
        assert f"{result.geomean_error * 100:6.1f}%" in geomean_line
        if abs(result.geomean_error - result.mean_error) * 100 >= 0.1:
            assert f"{result.mean_error * 100:6.1f}%" not in geomean_line

    def test_simulation_scope_parameter_reaches_the_batch_config(self):
        from repro.pipeline.batch import BatchConfig

        config = BatchConfig(simulation_scope="whole_gpu")
        session = config.build_session()
        assert session.simulation_scope == "whole_gpu"
        assert session.profile_stage.simulation_scope == "whole_gpu"


class TestFigure7:
    def test_coverage_rows_for_selected_benchmarks(self):
        cases = [case_by_name("rodinia/kmeans:loop_unrolling"),
                 case_by_name("rodinia/bfs:loop_unrolling")]
        rows = evaluate_figure7(cases)
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row.coverage_before <= 1.0
            assert 0.0 <= row.coverage_after <= 1.0
            assert row.coverage_after >= row.coverage_before
            assert row.edges_after <= row.edges_before
        text = format_figure7(rows)
        assert "rodinia/kmeans" in text and "mean" in text


class TestFigure1:
    def test_sampling_demo_quantities(self):
        demo = sampling_model_demo(sample_period=8)
        assert demo["total_samples"] == demo["active_samples"] + demo["latency_samples"]
        assert 0.0 <= demo["stall_ratio"] <= 1.0
        assert demo["stall_ratio"] + demo["active_ratio"] == pytest.approx(1.0)
        assert demo["stalls_by_reason"]
        assert demo["simulation_scope"] == "single_wave"

    def test_sampling_demo_runs_under_the_whole_gpu_scope(self):
        demo = sampling_model_demo(sample_period=32, simulation_scope="whole_gpu")
        assert demo["simulation_scope"] == "whole_gpu"
        assert demo["total_samples"] == demo["active_samples"] + demo["latency_samples"]
        # The sample stream now comes from every SM, so it is far denser
        # than the single-SM demo at the same period.
        single = sampling_model_demo(sample_period=32)
        assert demo["total_samples"] > single["total_samples"]
        assert demo["kernel_cycles"] >= demo["wave_cycles"]
