"""Tests for the assembly text parser."""

import pytest

from repro.isa.parser import ParseError, parse_instruction, parse_program
from repro.isa.registers import (
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
)


class TestParseInstruction:
    def test_table1_instruction(self):
        """Parse the paper's Table 1 example: '@P0 LDG.32 R0, [R2]'."""
        instruction = parse_instruction("@P0 LDG.32 R0, [R2]")
        assert instruction.opcode == "LDG"
        assert instruction.modifiers == ("32",)
        assert instruction.predicate == Predicate(0)
        assert instruction.dests == (RegisterOperand(0),)
        memory = instruction.sources[0]
        assert isinstance(memory, MemoryOperand)
        assert memory.base == RegisterOperand(2)
        assert memory.space is MemorySpace.GLOBAL

    def test_negated_predicate(self):
        instruction = parse_instruction("@!P0 LDC R0, [R4]")
        assert instruction.predicate == Predicate(0, negated=True)
        assert instruction.sources[0].space is MemorySpace.CONSTANT

    def test_three_operand_arithmetic(self):
        instruction = parse_instruction("IADD R8, R0, R7")
        assert instruction.dests == (RegisterOperand(8),)
        assert instruction.sources == (RegisterOperand(0), RegisterOperand(7))

    def test_predicate_destination(self):
        instruction = parse_instruction("ISETP.GE.AND P0, R3, R4")
        assert instruction.dests == (Predicate(0),)
        assert instruction.sources == (RegisterOperand(3), RegisterOperand(4))

    def test_store_memory_destination(self):
        instruction = parse_instruction("STG.E.32 [R2+0x10], R5")
        memory = instruction.dests[0]
        assert isinstance(memory, MemoryOperand)
        assert memory.offset == 0x10
        assert instruction.sources == (RegisterOperand(5),)

    def test_branch_target(self):
        instruction = parse_instruction("BRA 0x100")
        assert instruction.target == 0x100

    def test_branch_label_resolution(self):
        instruction = parse_instruction("BRA LOOP", labels={"LOOP": 0x40})
        assert instruction.target == 0x40

    def test_unresolved_label_raises(self):
        with pytest.raises(ParseError):
            parse_instruction("BRA NOWHERE")

    def test_immediate_operand(self):
        instruction = parse_instruction("MOV32I R1, 0x20")
        assert isinstance(instruction.sources[0], ImmediateOperand)
        assert instruction.sources[0].value == 0x20

    def test_special_register(self):
        instruction = parse_instruction("S2R R0, SR_TID.X")
        assert str(instruction.sources[0]) == "SR_TID.X"

    def test_control_code_roundtrip(self):
        text = "@P0 LDG.E.32 R0, [R2] [B13:W0:R-:S1:Y]"
        instruction = parse_instruction(text)
        assert instruction.control.write_barrier == 0
        assert instruction.control.wait_mask == frozenset({1, 3})
        # render(with_control=True) parses back to the same fields.
        reparsed = parse_instruction(instruction.render(with_control=True))
        assert reparsed.control == instruction.control
        assert reparsed.opcode == instruction.opcode

    def test_offset_prefix(self):
        instruction = parse_instruction("/*0040*/ IADD R1, R1, R2")
        assert instruction.offset == 0x40

    def test_unknown_opcode_raises(self):
        with pytest.raises(ParseError):
            parse_instruction("BOGUS R1, R2")

    def test_empty_text_raises(self):
        with pytest.raises(ParseError):
            parse_instruction("   ")


class TestParseProgram:
    def test_labels_and_offsets(self):
        program = parse_program(
            """
            # prologue
            MOV32I R1, 0
            LOOP:
            IADD R1, R1, R2
            ISETP.LT.AND P0, R1, R3
            @P0 BRA LOOP
            EXIT
            """
        )
        assert [instruction.opcode for instruction in program] == [
            "MOV32I", "IADD", "ISETP", "BRA", "EXIT",
        ]
        assert program[3].target == program[1].offset
        assert [instruction.offset for instruction in program] == [0, 16, 32, 48, 64]

    def test_comments_and_blank_lines_ignored(self):
        program = parse_program("// header\n\nMOV R1, R2  \n# trailing\n")
        assert len(program) == 1

    def test_duplicate_free_instruction_stream(self):
        program = parse_program("MOV R1, R2\nMOV R2, R3")
        assert program[0].offset != program[1].offset


class TestParseErrorContext:
    """ParseError carries file/line/column/token context (schema of the
    rendered message: ``name:line:column: message``)."""

    def test_program_error_names_source_line_and_token(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("MOV R0, RZ\nBOGUS R1, R2\n", source_name="k.asm")
        error = excinfo.value
        assert error.source_name == "k.asm"
        assert error.line == 2
        assert error.token == "BOGUS"
        assert str(error).startswith("k.asm:2:")
        assert "unknown opcode" in str(error)

    def test_operand_error_carries_the_column(self):
        with pytest.raises(ParseError) as excinfo:
            parse_instruction("MOV R0, ???")
        error = excinfo.value
        assert error.token == "???"
        assert error.column == len("MOV R0, ") + 1  # 1-based

    def test_bare_message_survives_context_wrapping(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("WATNOW R1", source_name="x.asm")
        error = excinfo.value
        assert "WATNOW" in error.bare_message
        assert not error.bare_message.startswith("x.asm")

    def test_with_context_fills_only_missing_fields(self):
        error = ParseError("boom", token="T")
        enriched = error.with_context(source_name="f.asm", line=3, column=9, token="X")
        assert enriched.source_name == "f.asm"
        assert enriched.line == 3
        assert enriched.column == 9
        assert enriched.token == "T"  # existing context wins

    def test_parse_error_is_a_value_error(self):
        assert issubclass(ParseError, ValueError)
