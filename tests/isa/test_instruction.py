"""Tests for the instruction / control-code model."""

import pytest

from repro.isa.instruction import ControlCode, Instruction
from repro.isa.registers import (
    BarrierRegister,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
)


def make_ldg(predicate=Predicate(7)) -> Instruction:
    return Instruction(
        offset=0x10,
        opcode="LDG",
        modifiers=("E", "32"),
        predicate=predicate,
        dests=(RegisterOperand(0),),
        sources=(MemoryOperand(RegisterOperand(2), space=MemorySpace.GLOBAL),),
        control=ControlCode(write_barrier=0),
    )


class TestControlCode:
    def test_defaults(self):
        code = ControlCode()
        assert code.stall_cycles == 1
        assert code.defined_barriers == frozenset()
        assert code.waited_barriers == frozenset()

    def test_defined_and_waited_barriers(self):
        code = ControlCode(write_barrier=0, read_barrier=3, wait_mask=frozenset({1, 2}))
        assert code.defined_barriers == {BarrierRegister(0), BarrierRegister(3)}
        assert code.waited_barriers == {BarrierRegister(1), BarrierRegister(2)}

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ControlCode(stall_cycles=16)
        with pytest.raises(ValueError):
            ControlCode(write_barrier=6)
        with pytest.raises(ValueError):
            ControlCode(wait_mask=frozenset({7}))

    def test_render(self):
        code = ControlCode(stall_cycles=4, write_barrier=0, wait_mask=frozenset({1}))
        assert code.render() == "[B1:W0:R-:S4:Y]"


class TestInstruction:
    def test_table1_field_access(self):
        """The '@P0 LDG.32 R0, [R2]' dissection of Table 1."""
        instruction = Instruction(
            offset=0,
            opcode="LDG",
            modifiers=("32",),
            predicate=Predicate(0),
            dests=(RegisterOperand(0),),
            sources=(MemoryOperand(RegisterOperand(2), space=MemorySpace.GLOBAL),),
            control=ControlCode(write_barrier=0, read_barrier=1),
        )
        assert instruction.is_predicated
        assert instruction.defined_registers == {RegisterOperand(0)}
        # The 64-bit global address occupies the register pair R2, R3.
        assert instruction.used_registers == {RegisterOperand(2), RegisterOperand(3)}
        assert instruction.defined_barriers == {BarrierRegister(0), BarrierRegister(1)}

    def test_unpredicated_instruction(self):
        instruction = make_ldg()
        assert not instruction.is_predicated

    def test_memory_space(self):
        assert make_ldg().memory_space is MemorySpace.GLOBAL

    def test_store_defines_no_registers(self):
        store = Instruction(
            offset=0,
            opcode="STG",
            dests=(MemoryOperand(RegisterOperand(2), space=MemorySpace.GLOBAL),),
            sources=(RegisterOperand(5),),
        )
        assert store.defined_registers == frozenset()
        assert RegisterOperand(5) in store.used_registers
        assert RegisterOperand(2) in store.used_registers

    def test_predicate_defs_and_uses(self):
        setp = Instruction(
            offset=0,
            opcode="ISETP",
            modifiers=("GE", "AND"),
            dests=(Predicate(0),),
            sources=(RegisterOperand(3), RegisterOperand(4)),
        )
        assert setp.defined_predicates == {Predicate(0)}
        guarded = Instruction(
            offset=16,
            opcode="IADD",
            predicate=Predicate(0, negated=True),
            dests=(RegisterOperand(1),),
            sources=(RegisterOperand(2), ImmediateOperand(1)),
        )
        assert Predicate(0) in guarded.used_predicates

    def test_double_precision_writes_pair(self):
        dmul = Instruction(
            offset=0,
            opcode="DMUL",
            dests=(RegisterOperand(6),),
            sources=(RegisterOperand(8), RegisterOperand(10)),
        )
        assert RegisterOperand(6) in dmul.defined_registers
        assert RegisterOperand(7) in dmul.defined_registers

    def test_classification_properties(self):
        assert make_ldg().is_memory and make_ldg().is_load
        bar = Instruction(offset=0, opcode="BAR", modifiers=("SYNC",))
        assert bar.is_synchronization
        bra = Instruction(offset=0, opcode="BRA", target=0x40)
        assert bra.is_branch and bra.is_control
        exit_instruction = Instruction(offset=0, opcode="EXIT")
        assert exit_instruction.is_exit

    def test_render_roundtrips_basic_fields(self):
        text = make_ldg(Predicate(0)).render()
        assert text.startswith("@P0 LDG.E.32 R0")
        assert "[R2]" in text
