"""Tests for the opcode catalog."""

import pytest

from repro.isa.opcodes import (
    GLOBAL_MEMORY_UPPER_BOUND,
    InstructionClass,
    LatencyClass,
    OPCODES,
    is_long_latency_arithmetic,
    lookup_opcode,
)
from repro.isa.registers import MemorySpace


def test_lookup_strips_modifiers():
    assert lookup_opcode("LDG.E.32").name == "LDG"
    assert lookup_opcode("ISETP.GE.AND").name == "ISETP"


def test_lookup_prefers_exact_multi_part_opcodes():
    assert lookup_opcode("IMAD.WIDE").name == "IMAD.WIDE"
    assert lookup_opcode("IMAD").name == "IMAD"


def test_unknown_opcode_raises():
    with pytest.raises(KeyError):
        lookup_opcode("FROBNICATE")


def test_memory_opcodes_have_spaces():
    assert lookup_opcode("LDG").memory_space is MemorySpace.GLOBAL
    assert lookup_opcode("LDL").memory_space is MemorySpace.LOCAL
    assert lookup_opcode("LDS").memory_space is MemorySpace.SHARED
    assert lookup_opcode("LDC").memory_space is MemorySpace.CONSTANT


def test_loads_and_stores_classified():
    assert lookup_opcode("LDG").is_load and not lookup_opcode("LDG").is_store
    assert lookup_opcode("STG").is_store and not lookup_opcode("STG").is_load


def test_variable_latency_loads_have_pessimistic_upper_bounds():
    info = lookup_opcode("LDG")
    assert info.latency_class is LatencyClass.VARIABLE
    assert info.latency_upper_bound == GLOBAL_MEMORY_UPPER_BOUND
    assert info.latency_upper_bound > info.latency


def test_fixed_latency_upper_bound_equals_latency():
    info = lookup_opcode("IADD")
    assert info.latency_class is LatencyClass.FIXED
    assert info.latency_upper_bound == info.latency


def test_synchronization_class():
    assert lookup_opcode("BAR").is_synchronization
    assert not lookup_opcode("LDG").is_synchronization


@pytest.mark.parametrize("name", ["IDIV", "DMUL", "F2F", "IMAD.WIDE", "IMUL"])
def test_long_latency_arithmetic_members(name):
    assert is_long_latency_arithmetic(lookup_opcode(name))


@pytest.mark.parametrize("name", ["IADD", "FADD", "FFMA", "MOV", "LDG", "BAR"])
def test_short_or_non_arithmetic_not_long_latency(name):
    assert not is_long_latency_arithmetic(lookup_opcode(name))


def test_catalog_consistency():
    for name, info in OPCODES.items():
        assert info.name == name
        assert info.latency >= 1
        assert info.latency_upper_bound >= info.latency
        if info.klass.is_memory:
            assert info.memory_space is not None


def test_core_alu_latency_is_four_cycles():
    # The Volta microbenchmark result the simulator and pruning rules rely on.
    for name in ("IADD", "FADD", "FMUL", "FFMA", "MOV"):
        assert lookup_opcode(name).latency == 4
