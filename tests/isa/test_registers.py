"""Tests for the operand / register model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.registers import (
    ALWAYS,
    BarrierRegister,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    ZERO_REGISTER_INDEX,
)


class TestRegisterOperand:
    def test_str(self):
        assert str(RegisterOperand(7)) == "R7"

    def test_zero_register(self):
        assert RegisterOperand(ZERO_REGISTER_INDEX).is_zero
        assert str(RegisterOperand(ZERO_REGISTER_INDEX)) == "RZ"

    def test_pair(self):
        low, high = RegisterOperand(4).pair()
        assert (low.index, high.index) == (4, 5)

    def test_zero_pair_is_zero(self):
        low, high = RegisterOperand(ZERO_REGISTER_INDEX).pair()
        assert low.is_zero and high.is_zero

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RegisterOperand(256)
        with pytest.raises(ValueError):
            RegisterOperand(-1)

    @given(st.integers(min_value=0, max_value=255))
    def test_ordering_consistent_with_index(self, index):
        assert (RegisterOperand(0) <= RegisterOperand(index))


class TestPredicate:
    def test_true_and_false_conditions(self):
        assert str(Predicate(0)) == "P0"
        assert str(Predicate(0, negated=True)) == "!P0"

    def test_always_predicate(self):
        assert ALWAYS.is_true_predicate
        assert str(ALWAYS) == "PT"

    def test_complement(self):
        assert Predicate(3).complement() == Predicate(3, negated=True)
        assert Predicate(3, True).complement() == Predicate(3, False)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Predicate(8)


class TestBarrierRegister:
    @pytest.mark.parametrize("index", range(6))
    def test_valid_indices(self, index):
        assert str(BarrierRegister(index)) == f"B{index}"

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            BarrierRegister(6)


class TestMemoryOperand:
    def test_global_address_uses_register_pair(self):
        operand = MemoryOperand(RegisterOperand(2), space=MemorySpace.GLOBAL)
        assert [r.index for r in operand.address_registers()] == [2, 3]

    def test_shared_address_uses_single_register(self):
        operand = MemoryOperand(RegisterOperand(6), space=MemorySpace.SHARED)
        assert [r.index for r in operand.address_registers()] == [6]

    def test_zero_base_has_no_address_registers(self):
        operand = MemoryOperand(RegisterOperand(ZERO_REGISTER_INDEX))
        assert operand.address_registers() == ()

    def test_str_with_offset(self):
        operand = MemoryOperand(RegisterOperand(2), offset=0x10)
        assert str(operand) == "[R2+0x10]"


class TestImmediateOperand:
    def test_double_flag(self):
        assert ImmediateOperand(2.0, is_double=True).is_double
        assert not ImmediateOperand(2.0).is_double
