"""Tests for the fixed-width 128-bit encoder/decoder."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.encoder import (
    EncodingError,
    INSTRUCTION_BYTES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instruction import ControlCode, Instruction
from repro.isa.parser import parse_instruction
from repro.isa.registers import ImmediateOperand, Predicate, RegisterOperand


SAMPLE_TEXTS = [
    "@P0 LDG.E.32 R0, [R2]",
    "IADD R8, R0, R7",
    "FFMA R5, R4, R4, R5",
    "ISETP.GE.AND P0, R3, R4",
    "STG.E.32 [R2+0x10], R5",
    "LDS.32 R6, [R16+0x8]",
    "LDC.32 R9, [R6]",
    "MOV32I R1, 0x20",
    "S2R R0, SR_TID.X",
    "BAR.SYNC",
    "BRA 0x100",
    "EXIT",
    "@!P3 MUFU.RCP R7, R8",
    "DMUL R10, R12, R14",
    "F2F.F64.F32 R20, R21",
]


@pytest.mark.parametrize("text", SAMPLE_TEXTS)
def test_roundtrip_preserves_semantics(text):
    original = parse_instruction(text, offset=0x40)
    encoded = encode_instruction(original)
    assert len(encoded) == INSTRUCTION_BYTES
    decoded = decode_instruction(encoded, offset=0x40)
    assert decoded.opcode == original.opcode
    assert decoded.modifiers == original.modifiers
    assert decoded.predicate == original.predicate
    assert decoded.defined_registers == original.defined_registers
    assert decoded.used_registers == original.used_registers
    assert decoded.target == original.target


def test_roundtrip_preserves_control_code():
    instruction = parse_instruction("LDG.E.32 R0, [R2]").with_control(
        ControlCode(stall_cycles=2, write_barrier=3, wait_mask=frozenset({0, 5}))
    )
    decoded = decode_instruction(encode_instruction(instruction))
    assert decoded.control == instruction.control


def test_roundtrip_preserves_line_number():
    instruction = parse_instruction("IADD R1, R1, R2", line=42)
    assert decode_instruction(encode_instruction(instruction)).line == 42


def test_float_immediate_roundtrip():
    instruction = Instruction(
        offset=0,
        opcode="FMUL",
        dests=(RegisterOperand(3),),
        sources=(RegisterOperand(4), ImmediateOperand(2.5)),
    )
    decoded = decode_instruction(encode_instruction(instruction))
    value = [s for s in decoded.sources if isinstance(s, ImmediateOperand)][0]
    assert value.value == pytest.approx(2.5)


def test_program_roundtrip(toy_cubin):
    function = toy_cubin.function("toy_kernel")
    data = encode_program(function.instructions)
    assert len(data) == INSTRUCTION_BYTES * len(function.instructions)
    decoded = decode_program(data)
    assert [i.opcode for i in decoded] == [i.opcode for i in function.instructions]
    assert [i.offset for i in decoded] == [i.offset for i in function.instructions]


def test_too_many_modifiers_rejected():
    instruction = Instruction(offset=0, opcode="LDG", modifiers=("E", "32", "CG"),
                              dests=(RegisterOperand(0),))
    with pytest.raises(EncodingError):
        encode_instruction(instruction)


def test_unknown_modifier_rejected():
    instruction = Instruction(offset=0, opcode="LDG", modifiers=("NOPE",),
                              dests=(RegisterOperand(0),))
    with pytest.raises(EncodingError):
        encode_instruction(instruction)


def test_bad_length_rejected():
    with pytest.raises(EncodingError):
        decode_instruction(b"\x00" * 8)


@settings(max_examples=200, deadline=None)
@given(
    opcode=st.sampled_from(["IADD", "FADD", "FMUL", "FFMA", "MOV", "SHL", "LOP3"]),
    dest=st.integers(min_value=0, max_value=254),
    sources=st.lists(st.integers(min_value=0, max_value=254), min_size=1, max_size=3),
    predicate_index=st.integers(min_value=0, max_value=7),
    negated=st.booleans(),
    stall=st.integers(min_value=0, max_value=15),
)
def test_roundtrip_property(opcode, dest, sources, predicate_index, negated, stall):
    """Any encodable ALU instruction decodes back to the same def/use sets."""
    instruction = Instruction(
        offset=0,
        opcode=opcode,
        predicate=Predicate(predicate_index, negated=negated and predicate_index != 7),
        dests=(RegisterOperand(dest),),
        sources=tuple(RegisterOperand(index) for index in sources),
        control=ControlCode(stall_cycles=stall),
    )
    decoded = decode_instruction(encode_instruction(instruction))
    assert decoded.opcode == instruction.opcode
    assert decoded.defined_registers == instruction.defined_registers
    assert decoded.used_registers == instruction.used_registers
    assert decoded.control.stall_cycles == stall
