"""Tests for the CUBIN container, serialization and the disassembler."""

import pytest

from repro.cubin.binary import Cubin, FunctionVisibility
from repro.cubin.disasm import disassemble_cubin, disassemble_function, render_listing


class TestCubin:
    def test_kernels_and_device_functions(self, toy_cubin):
        assert [f.name for f in toy_cubin.kernels()] == ["toy_kernel"]
        assert toy_cubin.device_functions() == []

    def test_function_lookup_error(self, toy_cubin):
        with pytest.raises(KeyError):
            toy_cubin.function("missing")

    def test_duplicate_function_rejected(self, toy_cubin):
        with pytest.raises(ValueError):
            toy_cubin.add_function(toy_cubin.function("toy_kernel"))

    def test_code_size(self, toy_cubin):
        function = toy_cubin.function("toy_kernel")
        assert function.code_size == 16 * len(function.instructions)

    def test_line_table_covers_annotated_instructions(self, toy_cubin):
        function = toy_cubin.function("toy_kernel")
        lines = {entry.line for entry in function.line_table()}
        assert {10, 12, 13, 14, 16, 17} <= lines

    def test_json_roundtrip_preserves_structure(self, toy_cubin):
        restored = Cubin.from_json(toy_cubin.to_json())
        assert set(restored.functions) == set(toy_cubin.functions)
        original = toy_cubin.function("toy_kernel")
        copy = restored.function("toy_kernel")
        assert copy.visibility is FunctionVisibility.GLOBAL
        assert copy.registers_per_thread == original.registers_per_thread
        assert [i.opcode for i in copy.instructions] == [i.opcode for i in original.instructions]
        assert [i.line for i in copy.instructions] == [i.line for i in original.instructions]
        branch_targets = [i.target for i in copy.instructions if i.opcode == "BRA"]
        assert branch_targets == [i.target for i in original.instructions if i.opcode == "BRA"]


class TestDisassembler:
    def test_listing_contains_offsets_and_lines(self, toy_cubin):
        listing = render_listing(toy_cubin.function("toy_kernel"))
        assert "/*0000*/" in listing
        assert 'line 13' in listing
        assert "LDG" in listing

    def test_disassemble_builds_cfg(self, toy_cubin):
        result = disassemble_function(toy_cubin.function("toy_kernel"))
        assert len(result.cfg.blocks) >= 3
        assert result.name == "toy_kernel"

    def test_disassemble_from_encoded_bytes(self, toy_cubin):
        from_memory = disassemble_function(toy_cubin.function("toy_kernel"))
        from_bytes = disassemble_function(toy_cubin.function("toy_kernel"), from_bytes=True)
        assert [i.opcode for i in from_bytes.instructions] == [
            i.opcode for i in from_memory.instructions
        ]

    def test_disassemble_cubin_covers_all_functions(self, toy_cubin):
        assert set(disassemble_cubin(toy_cubin)) == set(toy_cubin.functions)
