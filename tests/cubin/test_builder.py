"""Tests for the KernelBuilder DSL and the control-code assembler pass."""

import pytest

from repro.cubin.builder import CubinBuilder, KernelBuilder, assign_control_codes, imm, p
from repro.cubin.binary import FunctionVisibility
from repro.isa.parser import parse_program


class TestKernelBuilder:
    def test_offsets_are_contiguous_16_byte_words(self):
        k = KernelBuilder("k")
        k.mov_imm(1, 0)
        k.iadd(1, 1, imm(1))
        k.exit()
        function = k.build()
        assert [i.offset for i in function.instructions] == [0, 16, 32]

    def test_line_tracking(self):
        k = KernelBuilder("k", source_file="a.cu")
        k.at_line(7)
        k.mov_imm(1, 0)
        k.at_line(9)
        k.exit()
        function = k.build()
        assert [i.line for i in function.instructions] == [7, 9]
        assert function.line_table()[0].file == "a.cu"

    def test_loop_creates_back_edge(self):
        k = KernelBuilder("k")
        k.mov_imm(1, 0)
        k.isetp(0, 1, 1, "LT")
        with k.loop("main", predicate=p(0)):
            k.iadd(1, 1, imm(1))
            k.isetp(0, 1, 1, "LT")
        k.exit()
        function = k.build()
        branch = [i for i in function.instructions if i.opcode == "BRA"][0]
        assert branch.target is not None and branch.target < branch.offset

    def test_forward_label_resolution(self):
        k = KernelBuilder("k")
        k.bra("DONE")
        k.mov_imm(1, 0)
        k.label("DONE")
        k.exit()
        function = k.build()
        assert function.instructions[0].target == function.instructions[2].offset

    def test_unresolved_label_raises(self):
        k = KernelBuilder("k")
        k.bra("NOWHERE")
        with pytest.raises(ValueError):
            k.build()

    def test_duplicate_label_raises(self):
        k = KernelBuilder("k")
        k.label("A")
        with pytest.raises(ValueError):
            k.label("A")

    def test_inline_ranges_recorded(self):
        k = KernelBuilder("k")
        k.mov_imm(1, 0)
        with k.inlined("callee", call_site_line=5):
            k.fadd(2, 1, 1)
            k.fmul(3, 2, 2)
        k.exit()
        function = k.build()
        assert len(function.inline_ranges) == 1
        inline_range = function.inline_ranges[0]
        assert inline_range.callee == "callee"
        assert inline_range.contains(16) and inline_range.contains(32)
        assert not inline_range.contains(0)
        assert function.inline_stack_at(16) == ("callee",)

    def test_registers_per_thread_inferred(self):
        k = KernelBuilder("k")
        k.mov_imm(40, 0)
        k.exit()
        assert k.build().registers_per_thread == 41

    def test_device_function_visibility(self):
        builder = CubinBuilder()
        f = builder.device_function("helper")
        f.ret()
        assert f.build().visibility is FunctionVisibility.DEVICE


class TestAssignControlCodes:
    def test_variable_latency_producer_gets_write_barrier(self):
        program = parse_program("LDG.E.32 R0, [R2]\nIADD R3, R0, R1\nEXIT")
        annotated = assign_control_codes(program)
        load, use, _ = annotated
        assert load.control.write_barrier is not None
        assert load.control.write_barrier in use.control.wait_mask

    def test_store_gets_read_barrier_and_war_wait(self):
        program = parse_program("STG.E.32 [R2], R5\nMOV32I R5, 0\nEXIT")
        annotated = assign_control_codes(program)
        store, overwrite, _ = annotated
        assert store.control.read_barrier is not None
        assert store.control.read_barrier in overwrite.control.wait_mask

    def test_branch_waits_on_all_outstanding_barriers(self):
        """The Figure 3 pattern: BRA waits on the LDG's barrier without reading R0."""
        program = parse_program("LDG.E.32 R0, [R2]\nBRA 0x100\nEXIT")
        annotated = assign_control_codes(program)
        load, branch, _ = annotated
        assert load.control.write_barrier in branch.control.wait_mask

    def test_fixed_latency_dependence_sets_stall_cycles(self):
        program = parse_program("IADD R1, R2, R3\nIADD R4, R1, R1\nEXIT")
        annotated = assign_control_codes(program)
        assert annotated[0].control.stall_cycles >= 4

    def test_independent_fixed_latency_keeps_minimal_stall(self):
        program = parse_program("IADD R1, R2, R3\nIADD R4, R5, R6\nEXIT")
        annotated = assign_control_codes(program)
        assert annotated[0].control.stall_cycles == 1

    def test_barriers_recycled_across_many_loads(self):
        text = "\n".join(f"LDG.E.32 R{i}, [R20]" for i in range(10)) + "\nEXIT"
        annotated = assign_control_codes(parse_program(text))
        barriers = [i.control.write_barrier for i in annotated if i.opcode == "LDG"]
        assert all(barrier is not None and 0 <= barrier < 6 for barrier in barriers)
