"""Tests for dependency-graph construction and cold-edge pruning."""

import pytest

from repro.arch.machine import VoltaV100
from repro.blame.graph import build_dependency_graph
from repro.blame.pruning import edge_supports_reason, prune_cold_edges
from repro.isa.parser import parse_instruction
from repro.sampling.stall_reasons import StallReason


class TestDependencyGraph:
    def test_nodes_exist_for_profiled_instructions(self, toy_profiled):
        graph = build_dependency_graph(toy_profiled.profile, toy_profiled.structure)
        assert len(graph.nodes) > 0
        assert all(node.function == "toy_kernel" for node in graph.nodes.values())

    def test_stalled_use_has_incoming_edge_from_load(self, toy_profiled, toy_cubin):
        graph = build_dependency_graph(toy_profiled.profile, toy_profiled.structure)
        function = toy_cubin.function("toy_kernel")
        load_offset = [i.offset for i in function.instructions if i.opcode == "LDG"][0]
        use_offset = [i.offset for i in function.instructions
                      if i.opcode == "FFMA" and i.line == 14][0]
        edges = graph.in_edges(("toy_kernel", use_offset))
        assert any(edge.source == ("toy_kernel", load_offset) for edge in edges)

    def test_copy_is_independent(self, toy_profiled):
        graph = build_dependency_graph(toy_profiled.profile, toy_profiled.structure)
        copy = graph.copy()
        copy.remove_edges(list(copy.edges))
        assert len(copy.edges) == 0
        assert len(graph.edges) > 0

    def test_stalled_nodes_have_stalls(self, toy_blame):
        for node in toy_blame.graph.stalled_nodes():
            assert node.total_stalls > 0


class TestOpcodeRule:
    def test_memory_dependency_requires_load_source(self):
        load = parse_instruction("LDG.E.32 R0, [R2]")
        alu = parse_instruction("IMAD R0, R4, R5, R6")
        bar = parse_instruction("BAR.SYNC")
        assert edge_supports_reason(load, StallReason.MEMORY_DEPENDENCY)
        assert not edge_supports_reason(alu, StallReason.MEMORY_DEPENDENCY)
        assert not edge_supports_reason(bar, StallReason.MEMORY_DEPENDENCY)

    def test_synchronization_requires_sync_source(self):
        bar = parse_instruction("BAR.SYNC")
        load = parse_instruction("LDG.E.32 R0, [R2]")
        assert edge_supports_reason(bar, StallReason.SYNCHRONIZATION)
        assert not edge_supports_reason(load, StallReason.SYNCHRONIZATION)

    def test_execution_dependency_excludes_global_loads(self):
        load = parse_instruction("LDG.E.32 R0, [R2]")
        shared = parse_instruction("LDS.32 R0, [R16]")
        alu = parse_instruction("IMAD R0, R4, R5, R6")
        store = parse_instruction("STG.E.32 [R2], R5")
        assert not edge_supports_reason(load, StallReason.EXECUTION_DEPENDENCY)
        assert edge_supports_reason(shared, StallReason.EXECUTION_DEPENDENCY)
        assert edge_supports_reason(alu, StallReason.EXECUTION_DEPENDENCY)
        assert edge_supports_reason(store, StallReason.EXECUTION_DEPENDENCY)


class TestPruning:
    def test_pruning_removes_edges_and_reports_statistics(self, toy_profiled):
        graph = build_dependency_graph(toy_profiled.profile, toy_profiled.structure)
        before = len(graph.edges)
        statistics = prune_cold_edges(graph, toy_profiled.structure, VoltaV100)
        assert statistics.total_edges == before
        assert statistics.remaining_edges == len(graph.edges)
        assert statistics.removed_total == before - len(graph.edges)
        assert statistics.removed_total >= 0

    def test_pruning_never_increases_edges(self, toy_profiled):
        graph = build_dependency_graph(toy_profiled.profile, toy_profiled.structure)
        before = len(graph.edges)
        prune_cold_edges(graph, toy_profiled.structure, VoltaV100)
        assert len(graph.edges) <= before

    def test_figure4_opcode_pruning_removes_imad_for_memory_stall(self):
        """Figure 4c: the IMAD -> IADD edge is pruned for memory dependency stalls."""
        from repro.blame.graph import DependencyEdge, DependencyGraph, DependencyNode
        from repro.cfg.graph import build_cfg
        from repro.cubin.binary import Cubin, Function, FunctionVisibility
        from repro.isa.parser import parse_program
        from repro.structure.program import build_program_structure

        program = parse_program(
            """
            @P0 LDG.E.32 R0, [R2]
            @!P0 LDC.32 R0, [R4]
            IMAD R0, R4, R5, R6
            IADD R8, R0, R7
            EXIT
            """
        )
        function = Function("k", FunctionVisibility.GLOBAL, program)
        cubin = Cubin(arch_flag="sm_70")
        cubin.add_function(function)
        structure = build_program_structure(cubin)

        graph = DependencyGraph()
        use = DependencyNode("k", program[3].offset, program[3],
                             stalls={StallReason.MEMORY_DEPENDENCY: 8})
        graph.add_node(use)
        for source in program[:3]:
            graph.add_node(DependencyNode("k", source.offset, source))
            graph.add_edge(DependencyEdge(("k", source.offset), use.key,
                                          frozenset({("R", 0)})))
        statistics = prune_cold_edges(graph, structure, VoltaV100)
        remaining_sources = {edge.source[1] for edge in graph.in_edges(use.key)}
        assert program[2].offset not in remaining_sources  # IMAD pruned
        assert program[0].offset in remaining_sources      # LDG kept
        assert program[1].offset in remaining_sources      # LDC kept
        assert statistics.removed_by_opcode >= 1
