"""Tests for Equation-1 stall apportioning and the full blame pipeline."""

import pytest

from repro.arch.machine import VoltaV100
from repro.blame.attribution import InstructionBlamer
from repro.blame.classification import classify_source
from repro.blame.coverage import single_dependency_coverage
from repro.blame.graph import build_dependency_graph
from repro.blame.pruning import prune_cold_edges
from repro.isa.parser import parse_instruction
from repro.sampling.stall_reasons import DetailedStallReason, StallReason


class TestClassification:
    """Figure 5: fine-grained classification by the source opcode."""

    @pytest.mark.parametrize(
        "text,reason,expected",
        [
            ("LDC.32 R0, [R4]", StallReason.MEMORY_DEPENDENCY,
             DetailedStallReason.CONSTANT_MEMORY_DEPENDENCY),
            ("LDL.32 R0, [R4]", StallReason.MEMORY_DEPENDENCY,
             DetailedStallReason.LOCAL_MEMORY_DEPENDENCY),
            ("LDG.E.32 R0, [R2]", StallReason.MEMORY_DEPENDENCY,
             DetailedStallReason.GLOBAL_MEMORY_DEPENDENCY),
            ("LDS.32 R0, [R16]", StallReason.EXECUTION_DEPENDENCY,
             DetailedStallReason.SHARED_MEMORY_DEPENDENCY),
            ("STG.E.32 [R2], R5", StallReason.EXECUTION_DEPENDENCY,
             DetailedStallReason.WAR_DEPENDENCY),
            ("IMAD R0, R4, R5, R6", StallReason.EXECUTION_DEPENDENCY,
             DetailedStallReason.ARITHMETIC_DEPENDENCY),
            ("BAR.SYNC", StallReason.SYNCHRONIZATION,
             DetailedStallReason.SYNCHRONIZATION),
        ],
    )
    def test_source_classification(self, text, reason, expected):
        assert classify_source(reason, parse_instruction(text)) is expected

    def test_unknown_source_defaults(self):
        assert classify_source(StallReason.MEMORY_DEPENDENCY, None) is (
            DetailedStallReason.GLOBAL_MEMORY_DEPENDENCY
        )


class TestBlamePipeline:
    def test_stall_totals_are_conserved(self, toy_profiled, toy_blame):
        """Apportioning redistributes stalls without creating or losing any."""
        profile = toy_profiled.profile
        dependent_total = sum(
            count
            for entry in profile.instructions.values()
            for reason, count in entry.stalls.items()
            if reason.is_dependent or reason.is_stall
        )
        blamed_total = sum(edge.stalls for edge in toy_blame.edges)
        assert blamed_total == pytest.approx(dependent_total, rel=1e-6)

    def test_memory_stalls_blamed_on_the_load(self, toy_profiled, toy_blame, toy_cubin):
        function = toy_cubin.function("toy_kernel")
        load_offset = [i.offset for i in function.instructions if i.opcode == "LDG"][0]
        blamed = toy_blame.blamed.get(("toy_kernel", load_offset), {})
        assert blamed.get(DetailedStallReason.GLOBAL_MEMORY_DEPENDENCY, 0) > 0

    def test_synchronization_stays_at_the_barrier(self, toy_blame, toy_cubin):
        function = toy_cubin.function("toy_kernel")
        bar_offset = [i.offset for i in function.instructions if i.opcode == "BAR"][0]
        sync_edges = [edge for edge in toy_blame.edges
                      if edge.reason is StallReason.SYNCHRONIZATION]
        if sync_edges:  # synchronization stalls occur whenever warps are imbalanced
            assert all(edge.source[1] == bar_offset or edge.dest[1] == bar_offset
                       for edge in sync_edges)

    def test_top_sources_sorted_descending(self, toy_blame):
        top = toy_blame.top_sources(5)
        values = [stalls for _key, stalls in top]
        assert values == sorted(values, reverse=True)

    def test_blamed_edges_have_distances(self, toy_blame):
        for edge in toy_blame.edges:
            if not edge.is_self_blame:
                assert edge.distance is not None and edge.distance >= 0


class TestEquation1:
    def test_figure4d_equal_apportioning(self):
        """Figure 4d: LDC has 2x the issue samples but 2x the path length of
        LDG, so both sources receive the same share of the 4 stalls."""
        from repro.blame.graph import DependencyEdge, DependencyGraph, DependencyNode
        from repro.cfg.graph import build_cfg
        from repro.cubin.binary import Cubin, Function, FunctionVisibility
        from repro.isa.parser import parse_program
        from repro.sampling.sample import KernelProfile, LaunchConfig, LaunchStatistics
        from repro.structure.program import build_program_structure

        # Two paths of different lengths reach the IADD: a short one through
        # the LDG arm (1 filler op) and a long one through the LDC arm
        # (3 filler ops); issue samples are set to 1 and 2 respectively.
        program = parse_program(
            """
            ISETP.LT.AND P0, R9, R8
            @P0 BRA SHORT
            LDC.32 R0, [R4]
            FFMA R20, R20, R20, R20
            FFMA R21, R21, R21, R21
            FFMA R22, R22, R22, R22
            BRA JOIN
            SHORT:
            LDG.E.32 R0, [R2]
            FFMA R23, R23, R23, R23
            JOIN:
            IADD R8, R0, R7
            EXIT
            """
        )
        function = Function("k", FunctionVisibility.GLOBAL, program)
        cubin = Cubin(arch_flag="sm_70")
        cubin.add_function(function)
        structure = build_program_structure(cubin)

        by_opcode = {i.opcode: i for i in program}
        ldg, ldc, iadd = by_opcode["LDG"], by_opcode["LDC"], by_opcode["IADD"]

        statistics = LaunchStatistics(
            kernel="k", config=LaunchConfig(1, 32), registers_per_thread=32,
            blocks_per_sm=1, warps_per_sm=1, warps_per_scheduler=1.0, occupancy=0.02,
            occupancy_limiter="grid", waves=1.0, wave_cycles=100, kernel_cycles=100,
            sample_period=1,
        )
        profile = KernelProfile(kernel="k", statistics=statistics)
        profile.record_issue("k", ldg.offset, 1)
        profile.record_issue("k", ldc.offset, 2)
        profile.record_stall("k", iadd.offset, StallReason.MEMORY_DEPENDENCY, 4)

        blame = InstructionBlamer(VoltaV100).blame(profile, structure)
        ldg_share = blame.blamed_stalls(("k", ldg.offset))
        ldc_share = blame.blamed_stalls(("k", ldc.offset))
        assert ldg_share + ldc_share == pytest.approx(4.0)
        # The longer path cancels the larger issue count: the shares are equal
        # within the tolerance allowed by the +1 path-length smoothing.
        assert ldg_share == pytest.approx(ldc_share, rel=0.35)


class TestCoverage:
    def test_pruning_does_not_decrease_coverage(self, toy_profiled):
        graph = build_dependency_graph(toy_profiled.profile, toy_profiled.structure)
        before = single_dependency_coverage(graph)
        pruned = graph.copy()
        prune_cold_edges(pruned, toy_profiled.structure, VoltaV100)
        after = single_dependency_coverage(pruned)
        assert 0.0 <= before <= 1.0
        assert 0.0 <= after <= 1.0
        assert after >= before

    def test_empty_graph_has_full_coverage(self):
        from repro.blame.graph import DependencyGraph

        assert single_dependency_coverage(DependencyGraph()) == 1.0
