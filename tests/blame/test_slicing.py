"""Tests for backward slicing: operands, barrier registers and predicates."""

from repro.blame.slicing import BackwardSlicer
from repro.cfg.graph import build_cfg
from repro.cubin.builder import assign_control_codes
from repro.isa.parser import parse_program


def slicer_for(text, assign=False):
    program = parse_program(text)
    if assign:
        program = assign_control_codes(program)
    return BackwardSlicer(build_cfg(program)), program


def test_simple_register_def_use():
    slicer, program = slicer_for("LDG.E.32 R0, [R2]\nIADD R3, R0, R1\nEXIT")
    deps = slicer.slice_instruction(program[1].offset)
    assert program[0].offset in deps.source_offsets()


def test_immediate_def_shadows_earlier_def():
    slicer, program = slicer_for(
        "MOV32I R0, 1\nMOV32I R0, 2\nIADD R3, R0, R1\nEXIT"
    )
    deps = slicer.slice_instruction(program[2].offset)
    # Only the closest unconditional def is an immediate dependency source.
    assert deps.source_offsets() == [program[1].offset]


def test_figure3_barrier_register_dependency():
    """A BRA that waits on B0 depends on the LDG that writes B0 (Figure 3)."""
    slicer, program = slicer_for("LDG.E.32 R0, [R2]\nBRA 0x100\nEXIT", assign=True)
    deps = slicer.slice_instruction(program[1].offset)
    assert program[0].offset in deps.source_offsets()
    assert any(resource[0] == "B" for resource in deps.defs)


def test_figure4_predicated_defs_both_kept():
    """Figure 4a: an unpredicated use keeps both @P0 and @!P0 defs plus other paths."""
    slicer, program = slicer_for(
        """
        ISETP.LT.AND P0, R9, R8
        @!P0 LDC.32 R0, [R4]
        @P0 LDG.E.32 R0, [R2]
        IADD R8, R0, R7
        EXIT
        """
    )
    use = program[3]
    deps = slicer.slice_instruction(use.offset)
    sources = deps.source_offsets()
    assert program[1].offset in sources  # @!P0 LDC
    assert program[2].offset in sources  # @P0 LDG


def test_unpredicated_def_stops_search():
    slicer, program = slicer_for(
        """
        MOV32I R0, 7
        IMAD R0, R4, R5, R6
        IADD R8, R0, R7
        EXIT
        """
    )
    deps = slicer.slice_instruction(program[2].offset)
    # The IMAD fully covers R0; the earlier MOV is not an immediate source.
    assert deps.source_offsets() == [program[1].offset]


def test_matching_predicate_def_covers_predicated_use():
    slicer, program = slicer_for(
        """
        MOV32I R0, 1
        @P0 MOV32I R0, 2
        @P0 IADD R3, R0, R1
        EXIT
        """
    )
    deps = slicer.slice_instruction(program[2].offset)
    # The @P0 def covers the @P0 use; the search stops there for R0 (the
    # guard predicate P0 itself has no defs in this snippet).
    register_defs = deps.defs.get(("R", 0), [])
    assert [site.offset for site in register_defs] == [program[1].offset]


def test_defs_found_through_back_edges():
    slicer, program = slicer_for(
        """
        MOV32I R1, 0
        LOOP:
        IADD R5, R4, R1
        LDG.E.32 R4, [R2]
        ISETP.LT.AND P0, R1, R3
        @P0 BRA LOOP
        EXIT
        """
    )
    use = program[1]       # IADD consumes R4 loaded on the previous iteration
    load = program[2]
    deps = slicer.slice_instruction(use.offset)
    assert load.offset in deps.source_offsets()


def test_memory_address_registers_are_sliced():
    slicer, program = slicer_for(
        "IADD R2, R6, R7\nLDG.E.32 R0, [R2]\nEXIT"
    )
    deps = slicer.slice_instruction(program[1].offset)
    assert program[0].offset in deps.source_offsets()


def test_slices_are_cached():
    slicer, program = slicer_for("LDG.E.32 R0, [R2]\nIADD R3, R0, R1\nEXIT")
    first = slicer.slice_instruction(program[1].offset)
    second = slicer.slice_instruction(program[1].offset)
    assert first is second


def test_instruction_without_register_uses_has_no_defs():
    slicer, program = slicer_for("MOV32I R1, 5\nEXIT")
    deps = slicer.slice_instruction(program[1].offset)
    assert not deps
