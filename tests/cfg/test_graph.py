"""Tests for CFG construction and path queries."""

import pytest

from repro.cfg.graph import build_cfg
from repro.isa.parser import parse_program


def simple_loop():
    return parse_program(
        """
        MOV32I R1, 0
        MOV32I R2, 16
        LOOP:
        IADD R1, R1, R3
        ISETP.LT.AND P0, R1, R2
        @P0 BRA LOOP
        STG.E.32 [R4], R1
        EXIT
        """
    )


def diamond():
    return parse_program(
        """
        ISETP.LT.AND P0, R1, R2
        @P0 BRA THEN
        IADD R3, R3, R1
        BRA JOIN
        THEN:
        IADD R3, R3, R2
        JOIN:
        STG.E.32 [R4], R3
        EXIT
        """
    )


class TestBuildCfg:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build_cfg([])

    def test_loop_blocks_and_edges(self):
        cfg = build_cfg(simple_loop())
        # Entry block, loop body, exit block.
        assert len(cfg.blocks) == 3
        loop_block = cfg.block_containing(0x20)
        # Back edge to itself plus fall-through to the exit block.
        assert sorted(cfg.successors[loop_block.index]) == sorted(
            [loop_block.index, loop_block.index + 1]
        )

    def test_branch_target_starts_new_block(self):
        cfg = build_cfg(diamond())
        then_block = cfg.block_containing(0x40)
        assert then_block.start_offset == 0x40

    def test_exit_has_no_successors(self):
        cfg = build_cfg(simple_loop())
        exit_block = cfg.blocks[-1]
        assert exit_block.terminator.opcode == "EXIT"
        assert cfg.successors[exit_block.index] == []

    def test_predecessors_mirror_successors(self):
        cfg = build_cfg(diamond())
        for block in cfg.blocks:
            for successor in cfg.successors[block.index]:
                assert block.index in cfg.predecessors[successor]

    def test_instruction_lookup(self):
        cfg = build_cfg(simple_loop())
        assert cfg.instruction_at(0x20).opcode == "IADD"
        with pytest.raises(KeyError):
            cfg.instruction_at(0x1000)

    def test_reverse_post_order_starts_at_entry(self):
        cfg = build_cfg(diamond())
        order = cfg.reverse_post_order()
        assert order[0] == cfg.entry_index
        assert sorted(order) == sorted(block.index for block in cfg.blocks)


class TestPathQueries:
    def test_same_block_distance(self):
        cfg = build_cfg(simple_loop())
        # IADD (0x20) to ISETP (0x30): adjacent, 0 instructions in between.
        assert cfg.shortest_path_instructions(0x20, 0x30) == 0

    def test_cross_block_distance(self):
        cfg = build_cfg(diamond())
        # ISETP (0x0) to the store in the join block (0x50).
        shortest = cfg.shortest_path_instructions(0x0, 0x50)
        longest = cfg.longest_path_instructions(0x0, 0x50)
        assert shortest is not None and longest is not None
        assert shortest <= longest

    def test_no_path_returns_none(self):
        cfg = build_cfg(diamond())
        # From the store back to the entry compare: no forward path.
        assert cfg.shortest_path_instructions(0x50, 0x0) is None

    def test_backedge_path_exists(self):
        cfg = build_cfg(simple_loop())
        # From the branch (0x40) back to the loop header (0x20) via the back edge.
        assert cfg.instruction_path_exists(0x40, 0x20)

    def test_blocks_on_all_paths_includes_endpoints(self):
        cfg = build_cfg(diamond())
        blocks = cfg.blocks_on_all_paths(0x0, 0x50)
        assert cfg.block_containing(0x0).index in blocks
        assert cfg.block_containing(0x50).index in blocks
        # Neither arm of the diamond is on every path.
        then_index = cfg.block_containing(0x40).index
        else_index = cfg.block_containing(0x20).index
        assert then_index not in blocks
        assert else_index not in blocks
