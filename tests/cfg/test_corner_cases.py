"""CFG corner cases: unreachable code, multi-exit loops, nested and
irreducible-looking shapes.

The static lint layer leans on dominators, post-dominators and the loop
nest for hazard reasoning, so the structural passes must stay well-defined
on the malformed shapes hand-written (or machine-generated) SASS can take —
not just on the tidy compiler output the registry cases model.
"""

from repro.cfg.dominators import compute_dominator_tree
from repro.cfg.graph import build_cfg
from repro.cfg.loops import find_loops
from repro.isa.parser import parse_program


def build(text):
    cfg = build_cfg(parse_program(text))
    return cfg, compute_dominator_tree(cfg)


# ----------------------------------------------------------------------
# Unreachable blocks
# ----------------------------------------------------------------------
DEAD_CODE = """
BRA LIVE
DEAD:
IADD R1, R1, R2
BRA DEAD
LIVE:
EXIT
"""


def test_unreachable_loop_does_not_break_structure_passes():
    cfg, tree = build(DEAD_CODE)
    # The dead self-loop is carved into its own block(s)...
    assert len(cfg.blocks) == 3
    # ...and RPO still enumerates every block exactly once.
    order = cfg.reverse_post_order()
    assert sorted(order) == sorted(block.index for block in cfg.blocks)
    # The loop pass sees the dead cycle's back edge without crashing.
    loops = find_loops(cfg, tree)
    assert all(isinstance(loop.blocks, frozenset) for loop in loops.loops)


def test_unreachable_block_is_not_dominated_by_entry_path():
    cfg, tree = build(DEAD_CODE)
    dead = cfg.block_containing(0x10).index
    live = cfg.block_containing(0x30).index
    assert tree.dominates(cfg.entry_index, live)
    # The entry has no path to the dead block; whatever idom convention the
    # tree picks, the dead block must never dominate live code.
    assert not tree.dominates(dead, live)
    assert not tree.dominates(dead, cfg.entry_index)


# ----------------------------------------------------------------------
# Multi-exit loops
# ----------------------------------------------------------------------
LOOP_WITH_BREAK = """
MOV32I R1, 0
HEAD:
IADD R1, R1, R2
ISETP.GE.AND P1, R1, R5
@P1 BRA OUT
ISETP.LT.AND P0, R1, R3
@P0 BRA HEAD
STG.E.32 [R6], R1
OUT:
EXIT
"""


def test_loop_with_break_has_one_loop_two_exits():
    cfg, tree = build(LOOP_WITH_BREAK)
    loops = find_loops(cfg, tree)
    assert len(loops.loops) == 1
    loop = loops.loops[0]
    head = cfg.block_containing(0x10).index
    assert loop.header == head
    # Two distinct edges leave the loop: the break and the fallthrough.
    exit_edges = [
        (source, destination)
        for source in loop.blocks
        for destination in cfg.successors.get(source, [])
        if destination not in loop.blocks
    ]
    assert len(exit_edges) == 2
    assert len({source for source, _ in exit_edges}) == 2


def test_loop_header_dominates_break_block():
    cfg, tree = build(LOOP_WITH_BREAK)
    loops = find_loops(cfg, tree)
    loop = loops.loops[0]
    for block_index in loop.blocks:
        assert tree.dominates(loop.header, block_index)


# ----------------------------------------------------------------------
# Nested loops
# ----------------------------------------------------------------------
NESTED = """
MOV32I R1, 0
OUTER:
MOV32I R2, 0
INNER:
IADD R2, R2, R3
ISETP.LT.AND P0, R2, R4
@P0 BRA INNER
IADD R1, R1, R2
ISETP.LT.AND P1, R1, R5
@P1 BRA OUTER
EXIT
"""


def test_nested_loops_parenting():
    cfg, tree = build(NESTED)
    loops = find_loops(cfg, tree)
    assert len(loops.loops) == 2
    inner = next(loop for loop in loops.loops if loop.header_offset == 0x20)
    outer = next(loop for loop in loops.loops if loop.header_offset == 0x10)
    assert inner.parent == outer.index
    assert outer.parent is None
    assert inner.index in outer.children
    assert inner.blocks < outer.blocks


def test_nested_loop_back_edges_are_disjoint():
    cfg, tree = build(NESTED)
    loops = find_loops(cfg, tree)
    all_edges = [edge for loop in loops.loops for edge in loop.back_edges]
    assert len(all_edges) == len(set(all_edges)) == 2


# ----------------------------------------------------------------------
# Irreducible-looking flow: a jump into the middle of a loop body
# ----------------------------------------------------------------------
SIDE_ENTRY = """
ISETP.LT.AND P0, R1, R2
@P0 BRA MIDDLE
HEAD:
IADD R1, R1, R3
MIDDLE:
IADD R1, R1, R4
ISETP.LT.AND P1, R1, R5
@P1 BRA HEAD
EXIT
"""


def test_side_entry_cycle_is_not_a_natural_loop():
    cfg, tree = build(SIDE_ENTRY)
    loops = find_loops(cfg, tree)
    head = cfg.block_containing(0x20).index
    middle = cfg.block_containing(0x30).index
    # HEAD does not dominate MIDDLE (the side entry skips it), so the
    # back edge MIDDLE->HEAD is not a dominator back edge: natural-loop
    # detection must not invent a loop here.
    assert not tree.dominates(head, middle)
    assert all(loop.header != head for loop in loops.loops)


def test_side_entry_cycle_keeps_rpo_and_dominators_consistent():
    cfg, tree = build(SIDE_ENTRY)
    order = cfg.reverse_post_order()
    assert sorted(order) == sorted(block.index for block in cfg.blocks)
    position = {block_index: rank for rank, block_index in enumerate(order)}
    # Dominators respect RPO: an idom always precedes its block.
    for block_index, idom in tree.immediate_dominators.items():
        if idom is not None and idom != block_index:
            assert position[idom] < position[block_index]
