"""Tests for dominator tree computation."""

from repro.cfg.dominators import compute_dominator_tree
from repro.cfg.graph import build_cfg
from repro.isa.parser import parse_program


def build(text):
    cfg = build_cfg(parse_program(text))
    return cfg, compute_dominator_tree(cfg)


DIAMOND = """
ISETP.LT.AND P0, R1, R2
@P0 BRA THEN
IADD R3, R3, R1
BRA JOIN
THEN:
IADD R3, R3, R2
JOIN:
STG.E.32 [R4], R3
EXIT
"""


def test_entry_dominates_everything():
    cfg, tree = build(DIAMOND)
    for block in cfg.blocks:
        assert tree.dominates(cfg.entry_index, block.index)


def test_branch_arms_do_not_dominate_join():
    cfg, tree = build(DIAMOND)
    join = cfg.block_containing(0x50).index
    then = cfg.block_containing(0x40).index
    else_ = cfg.block_containing(0x20).index
    assert not tree.dominates(then, join)
    assert not tree.dominates(else_, join)
    assert tree.immediate_dominators[join] == cfg.entry_index


def test_strict_domination_excludes_self():
    cfg, tree = build(DIAMOND)
    assert tree.dominates(cfg.entry_index, cfg.entry_index)
    assert not tree.strictly_dominates(cfg.entry_index, cfg.entry_index)


def test_dominators_chain_reaches_entry():
    cfg, tree = build(DIAMOND)
    join = cfg.block_containing(0x50).index
    chain = tree.dominators_of(join)
    assert chain[0] == join
    assert chain[-1] == cfg.entry_index


def test_loop_header_dominates_body():
    cfg, tree = build(
        """
        MOV32I R1, 0
        HEAD:
        IADD R1, R1, R2
        ISETP.LT.AND P0, R1, R3
        @P0 BRA BODY
        EXIT
        BODY:
        IADD R4, R4, R1
        BRA HEAD
        """
    )
    head = cfg.block_containing(0x10).index
    body = cfg.block_containing(0x50).index
    assert tree.dominates(head, body)


def test_children_are_consistent_with_idom():
    cfg, tree = build(DIAMOND)
    for parent in [block.index for block in cfg.blocks]:
        for child in tree.children(parent):
            assert tree.immediate_dominators[child] == parent
