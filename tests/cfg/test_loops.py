"""Tests for natural-loop detection and the loop-nest tree."""

from repro.cfg.graph import build_cfg
from repro.cfg.loops import find_loops
from repro.isa.parser import parse_program


def single_loop_cfg():
    return build_cfg(parse_program(
        """
        MOV32I R1, 0
        OUTER:
        IADD R1, R1, R2
        ISETP.LT.AND P0, R1, R3
        @P0 BRA OUTER
        EXIT
        """
    ))


def nested_loop_cfg():
    return build_cfg(parse_program(
        """
        MOV32I R1, 0
        OUTER:
        MOV32I R2, 0
        INNER:
        IADD R2, R2, R4
        ISETP.LT.AND P1, R2, R5
        @P1 BRA INNER
        IADD R1, R1, R2
        ISETP.LT.AND P0, R1, R3
        @P0 BRA OUTER
        EXIT
        """
    ))


def test_single_loop_detected():
    nest = find_loops(single_loop_cfg())
    assert len(nest) == 1
    loop = nest.loops[0]
    assert loop.parent is None
    assert loop.header in loop.blocks
    assert loop.back_edges


def test_straight_line_code_has_no_loops():
    cfg = build_cfg(parse_program("MOV R1, R2\nIADD R1, R1, R3\nEXIT"))
    assert len(find_loops(cfg)) == 0


def test_nested_loops_have_parent_child_relation():
    nest = find_loops(nested_loop_cfg())
    assert len(nest) == 2
    inner = min(nest.loops, key=lambda loop: len(loop.blocks))
    outer = max(nest.loops, key=lambda loop: len(loop.blocks))
    assert inner.parent == outer.index
    assert inner.index in outer.children
    assert inner.blocks < outer.blocks


def test_innermost_loop_containing():
    cfg = nested_loop_cfg()
    nest = find_loops(cfg)
    inner = min(nest.loops, key=lambda loop: len(loop.blocks))
    # The inner IADD at 0x30 belongs to the inner loop.
    assert nest.innermost_loop_containing(0x30).index == inner.index
    # The outer accumulate at 0x60 belongs only to the outer loop.
    outer = max(nest.loops, key=lambda loop: len(loop.blocks))
    assert nest.innermost_loop_containing(0x60).index == outer.index
    # The entry is in no loop.
    assert nest.innermost_loop_containing(0x0) is None


def test_loops_containing_orders_innermost_first():
    nest = find_loops(nested_loop_cfg())
    containing = nest.loops_containing(0x30)
    assert len(containing) == 2
    assert len(containing[0].blocks) <= len(containing[1].blocks)


def test_same_loop_query():
    nest = find_loops(nested_loop_cfg())
    assert nest.same_loop(0x30, 0x40)      # both in the inner loop
    assert nest.same_loop(0x30, 0x60)      # share the outer loop
    assert not nest.same_loop(0x0, 0x30)   # entry is in no loop


def test_nested_loops_helper_includes_descendants():
    nest = find_loops(nested_loop_cfg())
    outer = max(nest.loops, key=lambda loop: len(loop.blocks))
    nested = nest.nested_loops(outer)
    assert {loop.index for loop in nested} == {loop.index for loop in nest.loops}


def test_instructions_in_loop_cover_body():
    nest = find_loops(single_loop_cfg())
    instructions = nest.instructions_in_loop(nest.loops[0])
    opcodes = [instruction.opcode for instruction in instructions]
    assert "IADD" in opcodes and "BRA" in opcodes
