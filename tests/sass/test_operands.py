"""Operand parsing for real disassembly (``repro.sass.operands``)."""

import pytest

from repro.isa.registers import (
    ConstantOperand,
    ImmediateOperand,
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
    UniformPredicate,
    UniformRegister,
)
from repro.sass.operands import OperandError, extract_registers, parse_operand


class TestRegisters:
    def test_plain_register(self):
        assert parse_operand("R12") == RegisterOperand(12)

    def test_rz_is_the_zero_register(self):
        operand = parse_operand("RZ")
        assert isinstance(operand, RegisterOperand)
        assert operand.is_zero

    @pytest.mark.parametrize("token", ["R4.64", "R4.U32", "R4.H0", "R4.X4", "R4.reuse"])
    def test_width_and_reuse_suffixes_strip(self, token):
        assert parse_operand(token) == RegisterOperand(4)

    def test_negated_register(self):
        operand = parse_operand("-R7")
        assert isinstance(operand, RegisterOperand)
        assert operand.index == 7

    def test_absolute_value_bars(self):
        operand = parse_operand("|R3|")
        assert isinstance(operand, RegisterOperand)
        assert operand.index == 3

    def test_uniform_register(self):
        assert parse_operand("UR4") == UniformRegister(4)

    def test_predicates(self):
        assert parse_operand("P3") == Predicate(3)
        assert parse_operand("!P0") == Predicate(0, negated=True)
        assert parse_operand("UP2") == UniformPredicate(2)
        true_predicate = parse_operand("PT")
        assert isinstance(true_predicate, Predicate)
        assert true_predicate.is_true_predicate

    def test_negated_true_predicate(self):
        operand = parse_operand("!PT")
        assert isinstance(operand, Predicate)
        assert operand.negated
        assert not operand.is_true_predicate


class TestConstantsAndMemory:
    def test_constant_bank_operand(self):
        operand = parse_operand("c[0x0][0x160]")
        assert operand == ConstantOperand(bank=0, offset=0x160)

    def test_global_memory_with_offset(self):
        operand = parse_operand("[R2+0x10]")
        assert isinstance(operand, MemoryOperand)
        assert operand.base == RegisterOperand(2)
        assert operand.offset == 0x10

    def test_memory_with_uniform_base_term(self):
        operand = parse_operand("[R4.64+UR4+0x4]")
        assert isinstance(operand, MemoryOperand)
        assert operand.base == RegisterOperand(4)
        assert operand.offset == 0x4

    def test_descriptor_addressing(self):
        operand = parse_operand("desc[UR4][R2.64]")
        assert isinstance(operand, MemoryOperand)
        assert operand.base == RegisterOperand(2)

    def test_shared_space_is_threaded_through(self):
        operand = parse_operand("[R3.X4]", space=MemorySpace.SHARED)
        assert operand.space == MemorySpace.SHARED


class TestImmediates:
    def test_hex_integer(self):
        assert parse_operand("0x80") == ImmediateOperand(0x80)

    def test_decimal_integer(self):
        assert parse_operand("7") == ImmediateOperand(7)

    def test_hex_float_bit_pattern(self):
        operand = parse_operand("0f3F800000")
        assert isinstance(operand, ImmediateOperand)
        assert operand.value == pytest.approx(1.0)

    def test_hex_double_bit_pattern(self):
        operand = parse_operand("0d3FF0000000000000")
        assert isinstance(operand, ImmediateOperand)
        assert operand.value == pytest.approx(1.0)

    def test_negative_hex_float(self):
        operand = parse_operand("-0f3F800000")
        assert operand.value == pytest.approx(-1.0)

    def test_infinity_token(self):
        operand = parse_operand("INF")
        assert operand.value == float("inf")

    def test_qnan_token(self):
        operand = parse_operand("+QNAN")
        assert operand.value != operand.value  # NaN

    def test_special_register(self):
        operand = parse_operand("SR_CTAID.X")
        assert "SR_CTAID" in str(operand)


class TestFailures:
    @pytest.mark.parametrize("token", ["", "???", "c[0x0]", "[R", "R"])
    def test_garbage_raises_operand_error(self, token):
        with pytest.raises(OperandError) as excinfo:
            parse_operand(token)
        assert excinfo.value.token == token

    def test_operand_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            parse_operand("@@@")


class TestExtractRegisters:
    def test_finds_every_register_mention(self):
        registers = extract_registers("FANCY.OP R3, [R10+UR2], !P1, R3")
        assert {operand.index for operand in registers} == {3, 10}

    def test_empty_text(self):
        assert extract_registers("") == ()
