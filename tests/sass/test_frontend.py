"""Listing ingestion end to end (``repro.sass.frontend``)."""

import pytest

from repro.cubin.binary import Cubin
from repro.sass.frontend import detect_dialect, ingest_listing

CUOBJDUMP = """\
\tcode for sm_70
\t\tFunction : my_kernel
\t.headerflags\t@"EF_CUDA_SM70 EF_CUDA_PTX_SM(EF_CUDA_SM70)"
        /*0000*/                   MOV R1, c[0x0][0x28] ;      /* 0x00000a00ff017624 */
                                                               /* 0x000fd000078e00ff */
        /*0010*/                   S2R R0, SR_TID.X ;
        /*0020*/                   ISETP.GE.AND P0, PT, R0, c[0x0][0x160], PT ;
        /*0030*/              @P0  EXIT ;
        /*0040*/                   IMAD.WIDE R2, R0, 0x4, c[0x0][0x168] ;
        /*0050*/                   LDG.E.SYS R4, [R2.64] ;
        /*0060*/                   FADD R4, R4, 1 ;
        /*0070*/                   STG.E.SYS [R2.64], R4 ;
        /*0080*/                   EXIT ;
"""

NVDISASM = """\
\t.headerflags\t@"EF_CUDA_TEXMODE_UNIFIED EF_CUDA_64BIT_ADDRESS EF_CUDA_SM75"
\t.section\t.text.loop_kernel,"ax",@progbits
\t.sectioninfo\t@"SHI_REGISTERS=12"
loop_kernel:
        /*0000*/                   MOV R1, c[0x0][0x28] ;
        /*0010*/                   MOV R0, RZ ;
.L_x_0:
        /*0020*/                   ISETP.GE.AND P0, PT, R0, 0x10, PT ;
        /*0030*/              @P0  BRA `(.L_x_1) ;
        /*0040*/                   IADD3 R0, R0, 0x1, RZ ;
        /*0050*/                   BRA `(.L_x_0) ;
.L_x_1:
        /*0060*/                   EXIT ;
"""

BARE = """\
# two-instruction bare listing
MOV R0, RZ
EXIT
"""


class TestDialectDetection:
    def test_cuobjdump(self):
        assert detect_dialect(CUOBJDUMP) == "cuobjdump"

    def test_nvdisasm(self):
        assert detect_dialect(NVDISASM) == "nvdisasm"

    def test_bare(self):
        assert detect_dialect(BARE) == "bare"


class TestCuobjdumpIngest:
    def test_function_and_arch(self):
        cubin, report = ingest_listing(CUOBJDUMP, source_name="k.sass")
        assert cubin.arch_flag == "sm_70"
        assert set(cubin.functions) == {"my_kernel"}
        assert report.dialect == "cuobjdump"
        assert report.arch_flag == "sm_70"

    def test_full_coverage_and_counts(self):
        _cubin, report = ingest_listing(CUOBJDUMP)
        assert report.total == 9
        assert report.decoded == 9
        assert report.coverage == 1.0

    def test_offsets_come_from_comments(self):
        cubin, _report = ingest_listing(CUOBJDUMP)
        offsets = [i.offset for i in cubin.functions["my_kernel"].instructions]
        assert offsets == [0x0, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80]

    def test_listing_lines_are_stamped(self):
        cubin, _report = ingest_listing(CUOBJDUMP)
        instructions = cubin.functions["my_kernel"].instructions
        # The first instruction sits on line 4 of the listing text.
        assert instructions[0].line == 4
        # The encoding continuation line (line 5) is skipped, so the second
        # instruction is on line 6.
        assert instructions[1].line == 6

    def test_source_file_is_the_listing_name(self):
        cubin, _report = ingest_listing(CUOBJDUMP, source_name="k.sass")
        assert cubin.functions["my_kernel"].instructions[0].source_file == "k.sass"


class TestNvdisasmIngest:
    def test_section_name_and_registers(self):
        cubin, report = ingest_listing(NVDISASM)
        assert set(cubin.functions) == {"loop_kernel"}
        assert cubin.arch_flag == "sm_75"
        assert cubin.functions["loop_kernel"].registers_per_thread == 12
        assert report.dialect == "nvdisasm"

    def test_symbolic_targets_resolve_to_offsets(self):
        cubin, report = ingest_listing(NVDISASM)
        instructions = cubin.functions["loop_kernel"].instructions
        branches = [i for i in instructions if i.target is not None]
        assert [i.target for i in branches] == [0x60, 0x20]
        assert not report.warnings

    def test_unresolved_target_warns_but_does_not_crash(self):
        text = NVDISASM.replace("`(.L_x_1)", "`(.L_x_9)")
        cubin, report = ingest_listing(text)
        assert any(".L_x_9" in warning for warning in report.warnings)
        branch = cubin.functions["loop_kernel"].instructions[3]
        assert branch.target is None


class TestBareIngest:
    def test_implicit_function_with_sequential_offsets(self):
        cubin, report = ingest_listing(BARE)
        (name,) = cubin.functions
        instructions = cubin.functions[name].instructions
        assert [i.offset for i in instructions] == [0x0, 0x10]
        assert report.dialect == "bare"

    def test_default_arch_applies(self):
        cubin, _report = ingest_listing(BARE, default_arch="sm_80")
        assert cubin.arch_flag == "sm_80"


class TestDegradation:
    def test_unknown_opcode_reduces_coverage_not_ingest(self):
        text = CUOBJDUMP.replace(
            "FADD R4, R4, 1", "FANCYOP.X R4, R4, 1"
        )
        cubin, report = ingest_listing(text)
        assert report.total == 9
        assert report.decoded == 8
        assert report.coverage == pytest.approx(8 / 9, abs=1e-4)
        (ingest,) = report.functions
        assert "FANCYOP" in ingest.unknown_opcodes
        unknown = cubin.functions["my_kernel"].instructions[6]
        assert unknown.is_unknown_op

    def test_listing_without_instructions_raises(self):
        with pytest.raises(ValueError):
            ingest_listing("# nothing here\n")

    def test_ingest_report_dict_shape(self):
        _cubin, report = ingest_listing(CUOBJDUMP, source_name="k.sass")
        payload = report.to_dict()
        assert payload["source_name"] == "k.sass"
        assert payload["total"] == 9
        assert payload["coverage"] == 1.0
        assert payload["functions"][0]["name"] == "my_kernel"


class TestRoundTrip:
    def test_cubin_serializes_through_raw_listing(self):
        cubin, _report = ingest_listing(CUOBJDUMP, source_name="k.sass")
        payload = cubin.to_dict()
        restored = Cubin.from_dict(payload)
        original = cubin.functions["my_kernel"].instructions
        reloaded = restored.functions["my_kernel"].instructions
        assert len(reloaded) == len(original)
        assert [i.offset for i in reloaded] == [i.offset for i in original]
        assert [i.opcode for i in reloaded] == [i.opcode for i in original]
