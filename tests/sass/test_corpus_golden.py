"""The committed SASS corpus, pinned byte-for-byte.

Mirrors ``tests/staticcheck/test_golden.py`` for real disassembly: CI's
lint-smoke job regenerates these reports with ``gpa-advise lint
--sass-corpus --output json --output-dir`` and diffs the directory against
this tree, and ``tools/check_sass_corpus.py`` keeps listings, manifest and
goldens in sync.  Any frontend or engine change that shifts a byte of any
report must regenerate the goldens in the same commit.
"""

from pathlib import Path

import pytest

from repro.sass.corpus import (
    SASS_CORPUS,
    corpus_case_ids,
    corpus_listing_path,
    default_corpus_dir,
    lint_corpus_case,
    resolve_corpus_case,
)
from repro.sass.frontend import ingest_file
from repro.staticcheck.report import StaticReport

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

CASE_IDS = list(corpus_case_ids())


def test_corpus_has_at_least_eight_listings():
    assert len(SASS_CORPUS) >= 8


def test_every_case_has_a_listing_and_a_golden():
    listings = {path.name for path in Path(default_corpus_dir()).glob("*.sass")}
    goldens = {path.name for path in GOLDEN_DIR.glob("*.json")}
    assert listings == {case.filename for case in SASS_CORPUS}
    assert goldens == {f"{case.golden_name}.json" for case in SASS_CORPUS}


def test_unknown_case_id_raises_with_inventory():
    with pytest.raises(KeyError, match="sass/reduce_sum"):
        resolve_corpus_case("sass/no_such_kernel:sm_90")


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_decode_coverage_meets_the_floor(case_id):
    case = resolve_corpus_case(case_id)
    _cubin, ingest = ingest_file(
        corpus_listing_path(case), default_arch=case.arch_flag
    )
    assert ingest.coverage >= 0.95
    assert case.kernel in {f.name for f in ingest.functions}


@pytest.mark.parametrize("case_id", CASE_IDS)
def test_golden_report_is_byte_stable(case_id):
    case = resolve_corpus_case(case_id)
    report = lint_corpus_case(case)
    golden = (GOLDEN_DIR / f"{case.golden_name}.json").read_text()
    assert report.to_json() == golden
    # The golden file itself must be loadable by the strict loader, and it
    # carries the ingest ledger the corpus pins coverage through.
    restored = StaticReport.from_json(golden)
    assert restored.case_id == case_id
    assert restored.ingest["coverage"] >= 0.95


class TestSignatureDiagnostics:
    """Each listing was authored to trip a specific rule on real SASS."""

    @staticmethod
    def _rules(case_id):
        return {d.rule for d in lint_corpus_case(case_id).diagnostics}

    def test_unknown_opcodes_degrade_to_a_diagnostic(self):
        report = lint_corpus_case("sass/dotprod_unknown:sm_80")
        unknown = [d for d in report.diagnostics if d.rule == "unknown-opcode"]
        assert {d.details["opcode"] for d in unknown} == {"QSPC.E.S", "CCTL.IVALL"}
        # The unknown in the loop body still decodes registers, so liveness
        # ran to completion and produced the usual dataflow diagnostics.
        assert "dead-register-write" in self._rules("sass/dotprod_unknown:sm_80")

    def test_matmul_tile_column_read_conflicts_banks(self):
        assert "bank-conflict" in self._rules("sass/matmul_tiled:sm_70")

    def test_aos_strides_are_uncoalesced(self):
        assert "uncoalesced-stride" in self._rules("sass/axpby_bare:sm_70")

    def test_fully_decoded_listings_carry_no_unknown_opcode_diagnostic(self):
        for case_id in ("sass/saxpy:sm_70", "sass/vecnorm:sm_80"):
            assert "unknown-opcode" not in self._rules(case_id)
