"""The CLI and RequestBuilder surfaces over the SASS frontend.

``gpa-advise lint --sass`` / ``--sass-corpus`` and
``AdvisingRequest.builder().sass_listing(...)`` are how users reach the
frontend without importing :mod:`repro.sass` directly.
"""

import json
from pathlib import Path

import pytest

from repro.advisor.cli import main as cli_main
from repro.api.request import AdvisingRequest
from repro.api.schema import ApiValidationError
from repro.sampling.sample import LaunchConfig
from repro.sass.corpus import SASS_CORPUS, default_corpus_dir

CORPUS_DIR = Path(default_corpus_dir())
SAXPY = CORPUS_DIR / "saxpy_sm70.sass"


class TestLintSassCli:
    def test_text_report_includes_ingest_summary(self, capsys):
        assert cli_main(["lint", "--sass", str(SAXPY)]) == 0
        out = capsys.readouterr().out
        assert "Ingest: 18/18 instructions decoded" in out
        assert "dialect cuobjdump" in out

    def test_json_report_carries_the_ingest_ledger(self, capsys):
        assert cli_main(["lint", "--sass", str(SAXPY), "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "static_report"
        assert payload["ingest"]["coverage"] == 1.0
        assert payload["ingest"]["source_name"] == "saxpy_sm70.sass"

    def test_missing_file_fails_cleanly(self, capsys):
        assert cli_main(["lint", "--sass", "/no/such/listing.sass"]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "Traceback" not in err

    def test_empty_listing_fails_cleanly(self, tmp_path, capsys):
        empty = tmp_path / "empty.sass"
        empty.write_text("# no instructions\n")
        assert cli_main(["lint", "--sass", str(empty)]) == 1
        assert "Traceback" not in capsys.readouterr().err

    def test_sass_conflicts_with_case_scope(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["lint", "--sass", str(SAXPY), "--all"])


class TestLintSassCorpusCli:
    def test_text_sweep_summarizes_coverage(self, capsys):
        assert cli_main(["lint", "--sass-corpus"]) == 0
        out = capsys.readouterr().out
        assert f"Linted {len(SASS_CORPUS)} SASS listings" in out
        assert "worst decode coverage" in out

    def test_json_sweep_is_keyed_by_case_id(self, capsys):
        assert cli_main(["lint", "--sass-corpus", "--output", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {case.case_id for case in SASS_CORPUS}

    def test_output_dir_writes_the_golden_layout(self, tmp_path, capsys):
        out_dir = tmp_path / "reports"
        assert (
            cli_main(
                [
                    "lint", "--sass-corpus", "--output", "json",
                    "--output-dir", str(out_dir),
                ]
            )
            == 0
        )
        written = {path.name for path in out_dir.glob("*.json")}
        golden_dir = Path(__file__).resolve().parent / "golden"
        goldens = {path.name for path in golden_dir.glob("*.json")}
        assert written == goldens
        # Byte-for-byte the same as the committed goldens (CI's diff).
        for name in sorted(written):
            assert (out_dir / name).read_text() == (golden_dir / name).read_text()

    def test_output_dir_requires_json(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["lint", "--sass-corpus", "--output-dir", "x"])


class TestSassListingBuilder:
    def test_builder_ingests_a_listing_into_a_binary_request(self):
        request = (
            AdvisingRequest.builder()
            .sass_listing(SAXPY.read_text(), source_name="saxpy.sass")
            .build()
        )
        assert request.source == "binary"
        assert request.kernel == "_Z5saxpyifPKfPf"
        assert request.label == "saxpy.sass"
        assert request.cubin.arch_flag == "sm_70"
        assert request.config == LaunchConfig(grid_blocks=1, threads_per_block=128)

    def test_explicit_kernel_and_config_win(self):
        config = LaunchConfig(grid_blocks=64, threads_per_block=256)
        request = (
            AdvisingRequest.builder()
            .sass_listing(
                SAXPY.read_text(), kernel="_Z5saxpyifPKfPf", config=config
            )
            .build()
        )
        assert request.config == config

    def test_unknown_default_arch_listing_uses_fallback(self):
        text = "MOV R0, RZ\nEXIT\n"
        request = (
            AdvisingRequest.builder()
            .sass_listing(text, default_arch="sm_80")
            .build()
        )
        assert request.cubin.arch_flag == "sm_80"

    def test_request_round_trips_through_the_wire_form(self):
        request = (
            AdvisingRequest.builder()
            .sass_listing(SAXPY.read_text(), source_name="saxpy.sass")
            .build()
        )
        restored = AdvisingRequest.from_dict(request.to_dict())
        assert restored.kernel == request.kernel
        original = request.cubin.functions[request.kernel].instructions
        reloaded = restored.cubin.functions[request.kernel].instructions
        assert [i.opcode for i in reloaded] == [i.opcode for i in original]

    def test_conflicting_source_raises(self):
        builder = AdvisingRequest.builder().case("some/case:opt")
        with pytest.raises(ApiValidationError):
            builder.sass_listing("MOV R0, RZ\nEXIT\n")

class TestSessionLintCarriesIngest:
    def test_session_lint_reconstructs_the_ledger(self):
        from repro.api.session import AdvisingSession

        listing = Path(default_corpus_dir()) / "dotprod_unknown_sm80.sass"
        request = (
            AdvisingRequest.builder()
            .sass_listing(
                listing.read_text(),
                source_name="dotprod.sass",
                default_arch="sm_80",
            )
            .build()
        )
        report = AdvisingSession().lint(request)
        assert report.ingest is not None
        golden = json.loads(
            (Path("tests/sass/golden") / "dotprod_unknown__sm_80.json").read_text()
        )
        # Per-function ledgers agree with the lint_file golden; the
        # listing-level source_name differs (request label vs file name).
        assert report.ingest["functions"] == golden["ingest"]["functions"]
        assert report.ingest["coverage"] == golden["ingest"]["coverage"]
        assert any(diag.rule == "unknown-opcode" for diag in report.diagnostics)

    def test_registry_case_lint_has_null_ingest(self):
        from repro import request_for_case
        from repro.api.session import AdvisingSession

        report = AdvisingSession().lint(
            request_for_case("rodinia/gaussian:thread_increase")
        )
        assert report.ingest is None

    def test_round_tripped_request_keeps_the_ledger(self):
        from repro.api.session import AdvisingSession

        listing = Path(default_corpus_dir()) / "dotprod_unknown_sm80.sass"
        request = (
            AdvisingRequest.builder()
            .sass_listing(listing.read_text(), default_arch="sm_80")
            .build()
        )
        restored = AdvisingRequest.from_dict(request.to_dict())
        report = AdvisingSession().lint(restored)
        assert report.ingest is not None
        assert report.ingest["functions"][0]["unknown_opcodes"] == ["CCTL", "QSPC"]
