"""Line stripping and instruction decoding (``repro.sass.decoder``)."""

from repro.isa.registers import (
    MemoryOperand,
    MemorySpace,
    Predicate,
    RegisterOperand,
)
from repro.sass.decoder import decode_instruction, strip_line


class TestStripLine:
    def test_offset_comment_is_extracted(self):
        stripped = strip_line("        /*0040*/ IADD3 R1, R1, R2, RZ ;")
        assert stripped.offset == 0x40
        assert stripped.text == "IADD3 R1, R1, R2, RZ"

    def test_trailing_encoding_comment_is_dropped(self):
        stripped = strip_line(
            "/*0000*/ MOV R1, c[0x0][0x28] ;  /* 0x00000a00ff017624 */"
        )
        assert stripped.offset == 0
        assert stripped.text == "MOV R1, c[0x0][0x28]"

    def test_continuation_encoding_line_is_empty(self):
        stripped = strip_line(
            "                        /* 0x000fd000078e00ff */"
        )
        assert stripped.empty

    def test_control_bracket_is_dropped(self):
        stripped = strip_line("LDG.E R0, [R2] [B13:W0:R-:S1:Y] ;")
        assert stripped.text == "LDG.E R0, [R2]"

    def test_inline_line_comment_is_dropped(self):
        stripped = strip_line("MOV R0, RZ ; // set accumulator")
        assert stripped.text == "MOV R0, RZ"

    def test_blank_line(self):
        assert strip_line("   ").empty


class TestGuards:
    def test_predicated_instruction(self):
        instruction = decode_instruction("@P0 EXIT", offset=0x50).instruction
        assert instruction.predicate == Predicate(0)

    def test_negated_guard(self):
        instruction = decode_instruction("@!P2 BRA 0x40", offset=0).instruction
        assert instruction.predicate == Predicate(2, negated=True)

    def test_uniform_guard_maps_to_thread_predicate(self):
        instruction = decode_instruction("@UP3 EXIT", offset=0).instruction
        assert instruction.predicate == Predicate(3)

    def test_bad_guard_is_undecodable(self):
        assert decode_instruction("@XYZ EXIT", offset=0) is None

    def test_non_opcode_text_is_undecodable(self):
        assert decode_instruction("= 12 garbage", offset=0) is None


class TestConventions:
    def test_load_first_operand_is_dest(self):
        decoded = decode_instruction("LDG.E.SYS R10, [R6.64]", offset=0)
        instruction = decoded.instruction
        assert RegisterOperand(10) in instruction.dests
        assert any(isinstance(s, MemoryOperand) for s in instruction.sources)

    def test_store_memory_first_is_dest(self):
        decoded = decode_instruction("STG.E.SYS [R8.64], R12", offset=0)
        instruction = decoded.instruction
        assert isinstance(instruction.dests[0], MemoryOperand)
        assert RegisterOperand(12) in instruction.sources

    def test_shared_store_uses_shared_space(self):
        decoded = decode_instruction("STS [R3.X4], R5", offset=0)
        assert decoded.instruction.dests[0].space == MemorySpace.SHARED

    def test_isetp_pops_leading_predicate_dests(self):
        decoded = decode_instruction(
            "ISETP.GE.AND P0, PT, R0, c[0x0][0x170], PT", offset=0
        )
        instruction = decoded.instruction
        assert Predicate(0) in instruction.dests
        assert RegisterOperand(0) in instruction.sources

    def test_iadd3_carry_predicate_dest(self):
        decoded = decode_instruction("IADD3 R0, P1, R0, R4, RZ", offset=0)
        instruction = decoded.instruction
        assert RegisterOperand(0) in instruction.dests
        assert Predicate(1) in instruction.dests

    def test_shfl_register_dest_after_predicate(self):
        decoded = decode_instruction(
            "SHFL.DOWN PT, R17, R16, 0x10, 0x1f", offset=0
        )
        instruction = decoded.instruction
        assert RegisterOperand(17) in instruction.dests
        assert RegisterOperand(16) in instruction.sources

    def test_exit_has_no_dest(self):
        decoded = decode_instruction("EXIT", offset=0)
        assert decoded.instruction.dests == ()


class TestBranchTargets:
    def test_absolute_hex_target(self):
        decoded = decode_instruction("BRA 0x90", offset=0x20)
        assert decoded.instruction.target == 0x90
        assert decoded.symbolic_target is None

    def test_symbolic_backtick_target_is_deferred(self):
        decoded = decode_instruction("BRA `(.L_x_3)", offset=0)
        assert decoded.instruction.target is None
        assert decoded.symbolic_target == ".L_x_3"


class TestUnknownOpcodes:
    def test_unknown_opcode_is_flagged(self):
        decoded = decode_instruction("QSPC.E.S P1, R6, [R4]", offset=0xC0)
        assert decoded.unknown_opcode
        assert decoded.instruction.is_unknown_op

    def test_unknown_op_first_register_is_may_def_and_use(self):
        decoded = decode_instruction("QSPC.E.S P1, R6, [R4]", offset=0)
        instruction = decoded.instruction
        assert RegisterOperand(6) in instruction.dests
        # Sound liveness: the may-def register is also a use, and every
        # register the text names survives as a source.
        sources = set(instruction.sources)
        assert RegisterOperand(6) in sources
        assert any(
            isinstance(s, MemoryOperand) and s.base == RegisterOperand(4)
            for s in sources
        ) or RegisterOperand(4) in sources

    def test_unknown_op_without_operands(self):
        decoded = decode_instruction("CCTL.IVALL", offset=0)
        assert decoded.unknown_opcode
        assert decoded.instruction.dests == ()


class TestUnknownModifiers:
    def test_unknown_modifier_is_recorded_not_fatal(self):
        decoded = decode_instruction("LDG.E.WEIRDMOD R0, [R2]", offset=0)
        assert not decoded.unknown_opcode
        assert "WEIRDMOD" in decoded.unknown_modifiers

    def test_known_modifiers_are_not_flagged(self):
        decoded = decode_instruction("LDG.E.SYS R0, [R2]", offset=0)
        assert decoded.unknown_modifiers == ()


class TestLineStamping:
    def test_listing_line_is_stamped(self):
        decoded = decode_instruction("MOV R0, RZ", offset=0, listing_line=17)
        assert decoded.instruction.line == 17
