"""The simulator benchmark regression gate: pairing, backends, medians.

These tests drive :mod:`benchmarks.check_simulator_regression` (and the
median-of-repeats selection in :mod:`benchmarks.simulator_smoke`) on
synthetic summaries — no simulation runs — so the gate logic that CI
depends on is itself under tier-1.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"


def load(module_name):
    if str(BENCHMARKS) not in sys.path:
        # simulator_smoke imports its sibling bench_pipeline_batch by name.
        sys.path.insert(0, str(BENCHMARKS))
    spec = importlib.util.spec_from_file_location(
        module_name, BENCHMARKS / f"{module_name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def gate():
    return load("check_simulator_regression")


def block(scope="single_wave", memory_model="flat", backend="vector",
          cases=("a", "b"), rate=100_000, **extra):
    payload = {
        "simulation_scope": scope,
        "memory_model": memory_model,
        "simulator_backend": backend,
        "sample_period": 8,
        "cases": list(cases),
        "cycles_per_second": rate,
    }
    payload.update(extra)
    return payload


def summary(*blocks):
    return {"benchmark": "simulator_smoke", "measurements": list(blocks)}


class TestBackendIdentity:
    def test_backends_pair_independently(self, gate):
        reference = summary(block(backend="vector", rate=200_000),
                            block(backend="object", rate=100_000))
        fresh = summary(block(backend="object", rate=99_000),
                        block(backend="vector", rate=198_000))
        assert gate.check(fresh, reference, max_drop=0.30) == ""

    def test_vector_regression_fails_even_when_object_holds(self, gate):
        reference = summary(block(backend="vector", rate=200_000),
                            block(backend="object", rate=100_000))
        fresh = summary(block(backend="object", rate=100_000),
                        block(backend="vector", rate=120_000))
        error = gate.check(fresh, reference, max_drop=0.30)
        assert "backend=vector" in error
        assert "regressed" in error

    def test_missing_vector_block_fails(self, gate):
        """A fresh run that lost the vector core cannot pass on object alone."""
        reference = summary(block(backend="vector"), block(backend="object"))
        fresh = summary(block(backend="object"))
        error = gate.check(fresh, reference, max_drop=0.30)
        assert "no measurement" in error
        assert "backend=vector" in error

    def test_reference_without_vector_block_is_rejected(self, gate):
        reference = summary(block(backend="object"))
        fresh = summary(block(backend="object"), block(backend="vector"))
        error = gate.check(fresh, reference, max_drop=0.30)
        assert "no vector-backend block" in error

    def test_legacy_blocks_imply_the_object_core(self, gate):
        legacy = block(backend="object")
        del legacy["simulator_backend"]
        explicit = block(backend="object")
        assert gate.identity_of(legacy) == gate.identity_of(explicit)
        assert gate.identity_of(legacy) != gate.identity_of(block(backend="vector"))


class TestMedianOfRepeats:
    def test_run_smoke_reports_the_median_pass(self, gate, monkeypatch):
        smoke = load("simulator_smoke")
        rates = iter([999_999, 100_000, 400_000, 200_000])  # warm-up first

        def fake_run_once(case_ids, sample_period, scope, memory_model, backend):
            return block(rate=next(rates), cases=case_ids)

        monkeypatch.setattr(smoke, "run_once", fake_run_once)
        measured = smoke.run_smoke(["a", "b"], repeat=3)
        assert measured["cycles_per_second"] == 200_000
        assert measured["repeat"] == 3
        assert measured["cycles_per_second_runs"] == [100_000, 400_000, 200_000]

    def test_single_repeat_skips_the_warm_up(self, gate, monkeypatch):
        smoke = load("simulator_smoke")
        calls = []

        def fake_run_once(case_ids, sample_period, scope, memory_model, backend):
            calls.append(1)
            return block(rate=123, cases=case_ids)

        monkeypatch.setattr(smoke, "run_once", fake_run_once)
        measured = smoke.run_smoke(["a"], repeat=1)
        assert len(calls) == 1
        assert "repeat" not in measured
        assert measured["cycles_per_second"] == 123

    def test_bad_repeat_rejected(self, gate):
        smoke = load("simulator_smoke")
        with pytest.raises(ValueError, match="repeat"):
            smoke.run_smoke(["a"], repeat=0)


class TestHistoryAppend:
    def test_every_gated_run_is_recorded_pass_or_fail(self, gate, tmp_path):
        import json

        path = tmp_path / "BENCH_history.jsonl"
        fresh = summary(block(backend="vector", rate=200_000),
                        block(backend="object", rate=100_000))
        gate.append_history(path, gate.history_entry(fresh, "", "2026-08-08T03:23:00Z"))
        gate.append_history(path, gate.history_entry(fresh, "regressed 40%",
                                                     "2026-08-09T03:23:00Z"))
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [entry["gate"] for entry in lines] == ["ok", "fail"]
        assert all(entry["benchmark"] == "simulator_smoke" for entry in lines)
        first = lines[0]["blocks"]
        assert len(first) == 2
        assert {b["simulator_backend"] for b in first} == {"vector", "object"}
        assert all(b["cycles_per_second"] for b in first)

    def test_history_entries_keep_only_identity_and_rate(self, gate):
        noisy = block(backend="vector", rate=1, cycles_per_second_runs=[1, 2, 3],
                      wall_seconds=9.9)
        entry = gate.history_entry(summary(noisy), "", "now")
        (recorded,) = entry["blocks"]
        assert "cycles_per_second_runs" not in recorded
        assert "wall_seconds" not in recorded
        assert recorded["cycles_per_second"] == 1

    def test_cli_appends_history_even_on_gate_failure(self, gate, tmp_path):
        import json

        reference = summary(block(backend="vector", rate=200_000))
        fresh = summary(block(backend="vector", rate=50_000))
        fresh_path = tmp_path / "fresh.json"
        reference_path = tmp_path / "reference.json"
        fresh_path.write_text(json.dumps(fresh))
        reference_path.write_text(json.dumps(reference))
        history = tmp_path / "history" / "BENCH_history.jsonl"

        status = gate.main([str(fresh_path), "--reference", str(reference_path),
                            "--append-history", str(history)])
        assert status == 1  # the gate verdict is unchanged
        (entry,) = [json.loads(line) for line in history.read_text().splitlines()]
        assert entry["gate"] == "fail"
        assert entry["recorded"].endswith("Z")
