# A deliberately unparseable "core module": the lockstep linter must report
# a clean parse error (exit 2), not a traceback.
def check(commit=True:
    pass
