# core_object.py whose record_sample forgets commit=False: the negative
# fixture for the sampler-probe check.  Never imported, only AST-parsed.
import heapq


def simulate():
    barrier_dirty = False
    pending_memory = []

    def check(warp, now, commit=True):
        nonlocal barrier_dirty
        if warp.finished:
            return False, StallReason.IDLE, 0
        if now < warp.ready_cycle:
            return False, StallReason.EXECUTION_DEPENDENCY, warp.ready_cycle
        if warp.is_bar:
            if commit and not warp.sync_arrived:
                warp.sync_arrived = True
                barrier_dirty = True
            return False, StallReason.SYNCHRONIZATION, 0
        if warp.is_throttled_memory:
            recheck = hierarchy.backpressure(now, commit=commit)
            if recheck is not None:
                return False, StallReason.MEMORY_THROTTLE, recheck
            if commit:
                while pending_memory and pending_memory[0] <= now:
                    heapq.heappop(pending_memory)
        return True, StallReason.SELECTED, now

    def record_sample(scheduler, now):
        # BUG (deliberate): a committing probe perturbs the simulation.
        ok, reason, recheck = check(scheduler, now)
        return reason

    return check, record_sample
