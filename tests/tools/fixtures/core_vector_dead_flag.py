# core_vector.py defining a flag that is encoded but never consulted:
# the negative fixture for the flag-coverage check.  Never imported, only
# AST-parsed.
import heapq

_F_BAR = 1
_F_THROTTLE = 2
#: Encoded below but consulted by neither check() nor issue().
_F_FETCH = 4


def _pack_warp(op):
    flags = 0
    if op.is_bar:
        flags |= _F_BAR
    if op.is_throttled_memory:
        flags |= _F_THROTTLE
    if op.fetch_stall:
        flags |= _F_FETCH
    return (flags,)


def simulate():
    barrier_dirty = False
    pending_memory = []

    def check(w, now, commit=True):
        nonlocal barrier_dirty
        if finished[w]:
            return False, StallReason.IDLE, 0
        if now < ready_cycle[w]:
            return False, StallReason.EXECUTION_DEPENDENCY, ready_cycle[w]
        flags = recs[w][0]
        if flags & _F_BAR:
            if commit and not sync_arrived[w]:
                sync_arrived[w] = True
                barrier_dirty = True
            return False, StallReason.SYNCHRONIZATION, 0
        if flags & _F_THROTTLE:
            recheck = hierarchy.backpressure(now, commit=commit)
            if recheck is not None:
                return False, StallReason.MEMORY_THROTTLE, recheck
            if commit:
                while pending_memory and pending_memory[0] <= now:
                    heapq.heappop(pending_memory)
        return True, StallReason.SELECTED, now

    def record_sample(scheduler, now):
        ok, reason, recheck = check(scheduler, now, commit=False)
        return reason

    return check, record_sample
