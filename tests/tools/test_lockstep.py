"""The simulator-core lockstep linter (``tools/lint_core_lockstep.py``).

The positive case runs the linter against the real in-tree cores — the same
invocation CI's lint job makes — and the negative fixtures prove each check
actually fires: a stall reason added to only one core, an unguarded state
mutation on the sampler's observe path, a dead ``_F_*`` flag, and a
``record_sample`` that forgets ``commit=False``.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).resolve().parent / "fixtures"

_spec = importlib.util.spec_from_file_location(
    "lint_core_lockstep", REPO_ROOT / "tools" / "lint_core_lockstep.py"
)
lockstep = importlib.util.module_from_spec(_spec)
# Dataclass processing looks the module up in sys.modules.
sys.modules["lint_core_lockstep"] = lockstep
_spec.loader.exec_module(lockstep)


def _problems(object_name: str, vector_name: str):
    return lockstep.compare_cores(
        lockstep.summarize_core(FIXTURES / object_name),
        lockstep.summarize_core(FIXTURES / vector_name),
    )


def test_real_cores_are_in_lockstep(capsys):
    assert lockstep.main([]) == 0
    out = capsys.readouterr().out
    assert "agree" in out


def test_real_cores_reference_all_stall_reasons():
    from repro.sampling.stall_reasons import StallReason

    summary = lockstep.summarize_core(
        REPO_ROOT / "src" / "repro" / "sampling" / "simulator.py"
    )
    # Every referenced name is a real StallReason member (no typos), and the
    # scheduler-facing members are all present.
    members = {member.name for member in StallReason}
    assert summary.stall_reasons <= members
    assert {"SELECTED", "IDLE", "EXECUTION_DEPENDENCY", "SYNCHRONIZATION",
            "MEMORY_THROTTLE", "INSTRUCTION_FETCH"} <= summary.stall_reasons


def test_fixture_pair_is_clean():
    assert _problems("core_object.py", "core_vector.py") == []


def test_one_sided_stall_reason_fails():
    problems = _problems("core_object.py", "core_vector_extra_reason.py")
    assert any(
        "stall reasons only in core_vector_extra_reason.py" in problem
        and "LG_THROTTLE" in problem
        for problem in problems
    )


def test_unguarded_mutation_fails():
    problems = _problems("core_object.py", "core_vector_impure.py")
    mutations = [p for p in problems if "outside a commit guard" in p]
    assert mutations, problems
    # Both the subscript store and the nonlocal write are caught.
    assert any("sync_arrived" in p for p in mutations)
    assert any("barrier_dirty" in p for p in mutations)


def test_dead_flag_fails():
    problems = _problems("core_object.py", "core_vector_dead_flag.py")
    assert any(
        "neither check() nor issue() consults" in problem and "_F_FETCH" in problem
        for problem in problems
    )


def test_committing_sampler_probe_fails():
    problems = _problems("core_object_no_probe.py", "core_vector.py")
    assert any(
        "record_sample() never probes" in problem
        and "core_object_no_probe.py" in problem
        for problem in problems
    )


def test_cli_fails_on_drifted_pair(capsys):
    code = lockstep.main(
        [
            str(FIXTURES / "core_object.py"),
            str(FIXTURES / "core_vector_extra_reason.py"),
        ]
    )
    assert code == 1
    assert "problem(s) found" in capsys.readouterr().out


def test_cli_usage_error():
    assert lockstep.main(["only-one-arg.py"]) == 2


def test_cli_missing_core_module_exits_2(capsys):
    """A vanished core file is an environment error (exit 2), not a lint
    failure (exit 1) and never a traceback."""
    code = lockstep.main(
        [
            str(FIXTURES / "no_such_core.py"),
            str(FIXTURES / "core_vector.py"),
        ]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "cannot read core module" in captured.err
    assert "no_such_core.py" in captured.err
    assert "Traceback" not in captured.err
    assert captured.out == ""


def test_cli_unparseable_core_module_exits_2(capsys):
    code = lockstep.main(
        [
            str(FIXTURES / "core_broken_syntax.py"),
            str(FIXTURES / "core_vector.py"),
        ]
    )
    assert code == 2
    captured = capsys.readouterr()
    assert "cannot parse core module" in captured.err
    assert "core_broken_syntax.py" in captured.err
    assert "Traceback" not in captured.err


@pytest.mark.parametrize(
    "guard, expected",
    [
        ("commit", True),
        ("commit and not arrived", True),
        ("not commit", False),
        ("other_flag", False),
    ],
)
def test_commit_guard_detection(guard, expected):
    import ast

    test = ast.parse(guard, mode="eval").body
    assert lockstep._is_commit_guard(test) is expected
