"""pytest-benchmark harness configuration.

Each benchmark regenerates one table or figure of the paper's evaluation and
prints the reproduced rows/series next to the paper's numbers; the
pytest-benchmark timing wraps the regeneration itself so `--benchmark-only`
runs double as a performance check of the analysis pipeline.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-table3",
        action="store_true",
        default=False,
        help="evaluate every Table 3 row instead of the representative subset",
    )


@pytest.fixture(scope="session")
def full_table3(request):
    return request.config.getoption("--full-table3")
