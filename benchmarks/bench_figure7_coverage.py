"""Figure 7: single-dependency coverage before and after pruning cold edges."""

from __future__ import annotations

from repro.evaluation.figure7 import evaluate_figure7, format_figure7
from repro.workloads.registry import case_by_name

#: Benchmarks shown in Figure 7 (one per Rodinia kernel we model), including
#: the two outliers the paper discusses (bfs and nw).
FIGURE7_CASES = [
    "rodinia/backprop:warp_balance",
    "rodinia/bfs:loop_unrolling",
    "rodinia/b+tree:code_reorder",
    "rodinia/hotspot:strength_reduction",
    "rodinia/kmeans:loop_unrolling",
    "rodinia/lud:code_reorder",
    "rodinia/nw:warp_balance",
    "rodinia/pathfinder:code_reorder",
    "rodinia/heartwall:loop_unrolling",
    "rodinia/sradv1:warp_balance",
]


def test_figure7_single_dependency_coverage(benchmark):
    cases = [case_by_name(name) for name in FIGURE7_CASES]
    rows = benchmark.pedantic(evaluate_figure7, args=(cases,), iterations=1, rounds=1)

    print()
    print(format_figure7(rows))

    by_name = {row.benchmark: row for row in rows}
    # Pruning never hurts coverage and lifts the average markedly.
    assert all(row.coverage_after >= row.coverage_before for row in rows)
    mean_after = sum(row.coverage_after for row in rows) / len(rows)
    assert mean_after >= 0.7
    # Most benchmarks end above 0.8 after pruning (the paper's observation).
    high = sum(1 for row in rows if row.coverage_after >= 0.8)
    assert high >= len(rows) // 2
