"""Figure 8: the ExaTENSOR advice-report excerpt.

Regenerates the report of Section 7.1 / Figure 8: the ranked optimizers for
the ExaTENSOR tensor-transpose kernel with per-hotspot def/use locations and
distances.  The benchmark times one full profile-and-advise pass.
"""

from __future__ import annotations

from repro.advisor.advisor import GPA
from repro.advisor.report import render_report
from repro.workloads.registry import case_by_name


def test_figure8_exatensor_report(benchmark):
    gpa = GPA(sample_period=8)
    case = case_by_name("ExaTENSOR:strength_reduction")
    setup = case.build_baseline()

    report = benchmark.pedantic(
        gpa.advise, args=(setup.cubin, setup.kernel, setup.config, setup.workload),
        iterations=1, rounds=1,
    )

    text = render_report(report, top=3)
    print()
    print(text)

    # The structural elements of Figure 8.
    assert "GPUStrengthReductionOptimizer" in text
    assert "Avoid integer division" in text
    assert "estimate speedup" in text
    assert "distance" in text
    assert "ExaTENSOR/cuda2.cu" in text
    advice = report.advice_for("GPUStrengthReductionOptimizer")
    assert advice.hotspots, "the report lists def/use hotspots"
