"""Pipeline batch driver: sequential vs. parallel vs. warm-cache wall time.

``pytest benchmarks/bench_pipeline_batch.py --benchmark-only`` sweeps a
representative Table 3 subset three ways through
:class:`~repro.pipeline.batch.BatchAdvisor`:

1. sequential, no cache (the seed code's behaviour),
2. parallel across 4 worker processes, cold cache,
3. sequential again on the warm cache (no simulator invocations at all),

and prints the three wall times side by side.  The timed benchmark is the
warm-cache run; the printed comparison verifies the speedup claims of the
staged pipeline and that all three produce identical rows.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.evaluation.table3 import evaluate_table3
from repro.workloads.registry import case_by_name

CASES = [
    "rodinia/hotspot:strength_reduction",
    "rodinia/backprop:warp_balance",
    "rodinia/kmeans:loop_unrolling",
    "rodinia/gaussian:thread_increase",
    "rodinia/particlefilter:block_increase",
    "Quicksilver:function_inlining",
]


def _rows_key(result):
    return [
        (
            row.case.case_id,
            row.baseline_cycles,
            row.optimized_cycles,
            row.achieved_speedup,
            row.estimated_speedup,
        )
        for row in result.rows
    ]


def test_pipeline_batch(benchmark):
    cases = [case_by_name(name) for name in CASES]
    cache_dir = tempfile.mkdtemp(prefix="gpa-bench-cache-")
    try:
        started = time.perf_counter()
        sequential = evaluate_table3(cases, jobs=1)
        sequential_s = time.perf_counter() - started

        started = time.perf_counter()
        parallel = evaluate_table3(cases, jobs=4, cache_dir=cache_dir)
        parallel_s = time.perf_counter() - started

        warm = benchmark.pedantic(
            evaluate_table3,
            args=(cases,),
            kwargs={"jobs": 1, "cache_dir": cache_dir},
            iterations=1,
            rounds=3,
        )
        started = time.perf_counter()
        evaluate_table3(cases, jobs=1, cache_dir=cache_dir)
        warm_s = time.perf_counter() - started

        print()
        print(
            f"{len(cases)} cases: sequential {sequential_s:.2f}s, "
            f"parallel(4) {parallel_s:.2f}s, warm cache {warm_s:.2f}s "
            f"({sequential_s / max(warm_s, 1e-9):.0f}x)"
        )

        assert not sequential.failures
        assert _rows_key(sequential) == _rows_key(parallel) == _rows_key(warm)
        assert warm_s < sequential_s
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
