"""Simulator throughput smoke benchmark.

Profiles a small subset of the :mod:`bench_pipeline_batch` cases (baseline
and hand-optimized variants, sequential, no cache) and reports simulator
throughput as *simulated cycles per wall second*: the cycles the simulator
actually walked (``wave_cycles`` for the single-wave scope, the sum of
every SM's cycles across every wave for the whole-GPU scope) divided by the
time spent inside :meth:`AdvisingSession.profile`.

By default the smoke measures the **pinned suite** — one block per
configuration x simulator backend the regression gate watches:

* ``single_wave`` + ``flat`` over 3 cases — the cheap extrapolating path
  every CI run and most users exercise;
* ``whole_gpu`` + ``hierarchy`` over 1 case — the expensive path (full-grid
  dispatch through the L1/L2/DRAM model), so a slow-down that only affects
  the detailed engines cannot land silently;

each measured once on the ``vector`` (packed-array) core and once on the
``object`` (reference) core, so a regression in either backend fails the
gate on its own block.

The result is written as JSON — by default to ``BENCH_simulator.json`` at
the repository root — so CI can track the simulator's perf trajectory run
over run::

    PYTHONPATH=src python benchmarks/simulator_smoke.py --repeat 3
    PYTHONPATH=src python benchmarks/simulator_smoke.py \
        --scope whole_gpu --memory-model hierarchy --cases 1 \
        --backend vector --output /tmp/bench.json

Passing any of ``--scope``/``--memory-model``/``--cases``/``--sample-period``/
``--backend`` measures just that one configuration instead of the pinned
suite.  ``--repeat N`` runs one unrecorded warm-up pass and then ``N``
measured passes per block, reporting the **median** throughput (the
regression gate always compares the headline ``cycles_per_second``, so a
median-of-N reference absorbs runner noise).  ``--profile`` prints a
cProfile hot-spot table per block to stderr instead of gating numbers.

The workload is deterministic (fixed case list, fixed sample period), so
throughput changes reflect simulator changes, not workload drift.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from bench_pipeline_batch import CASES

from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.sampling.gpu import GpuSimulationResult
from repro.sampling.memory import MEMORY_MODELS
from repro.sampling.profiler import SIMULATION_SCOPES
from repro.sampling.vector import SIMULATOR_BACKENDS, resolve_simulator_backend

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
#: The bench_pipeline_batch subset the smoke run profiles.
SMOKE_CASES = CASES[:3]
#: The pinned configurations (scope, memory model, case count); each is
#: measured once per :data:`SMOKE_BACKENDS` entry.  The whole-GPU +
#: hierarchy block walks ~70x more simulated cycles per case, so it pins
#: one case.
SMOKE_SUITE = (
    ("single_wave", "flat", 3),
    ("whole_gpu", "hierarchy", 1),
)
#: Backends the pinned suite measures (vector first: it is the default
#: core, so its numbers lead the report).
SMOKE_BACKENDS = ("vector", "object")


def run_once(case_ids, sample_period: int, simulation_scope: str,
             memory_model: str, simulator_backend) -> dict:
    """Profile every case variant once; return the throughput summary."""
    session = AdvisingSession(
        sample_period=sample_period, simulation_scope=simulation_scope,
        memory_model=memory_model, simulator_backend=simulator_backend,
    )
    per_case = []
    simulated_cycles = 0
    wall_seconds = 0.0
    for case_id in case_ids:
        for variant in ("baseline", "optimized"):
            started = time.perf_counter()
            profiled = session.profile(request_for_case(case_id, variant))
            elapsed = time.perf_counter() - started
            simulation = profiled.simulation
            if isinstance(simulation, GpuSimulationResult):
                # Whole-GPU runs walk every SM of every wave; count all of it.
                cycles = simulation.simulated_sm_cycles
            else:
                cycles = profiled.profile.statistics.wave_cycles
            simulated_cycles += cycles
            wall_seconds += elapsed
            per_case.append(
                {
                    "case": case_id,
                    "variant": variant,
                    "simulated_cycles": cycles,
                    "kernel_cycles": profiled.profile.statistics.kernel_cycles,
                    "seconds": round(elapsed, 4),
                }
            )
    return {
        "simulation_scope": simulation_scope,
        "memory_model": memory_model,
        "simulator_backend": session.simulator_backend,
        "sample_period": sample_period,
        "cases": list(case_ids),
        "profiles": per_case,
        "simulated_cycles": simulated_cycles,
        "wall_seconds": round(wall_seconds, 4),
        "cycles_per_second": round(simulated_cycles / wall_seconds) if wall_seconds else 0,
    }


def run_smoke(case_ids, sample_period: int = 8, simulation_scope: str = "single_wave",
              memory_model: str = "flat", simulator_backend=None,
              repeat: int = 1) -> dict:
    """One measurement block; with ``repeat > 1``, warm up once and report
    the median-throughput pass (plus every pass's rate for trajectory
    plots)."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if repeat > 1:
        # Unrecorded warm-up: first-touch costs (imports, trace generation
        # caches, the registry) land here instead of skewing pass 1.
        run_once(case_ids, sample_period, simulation_scope, memory_model,
                 simulator_backend)
    runs = [
        run_once(case_ids, sample_period, simulation_scope, memory_model,
                 simulator_backend)
        for _ in range(repeat)
    ]
    rates = sorted(run["cycles_per_second"] for run in runs)
    median_rate = rates[len(rates) // 2]
    block = next(run for run in runs if run["cycles_per_second"] == median_rate)
    if repeat > 1:
        block["repeat"] = repeat
        block["cycles_per_second_runs"] = [run["cycles_per_second"] for run in runs]
    return block


def run_suite(sample_period: int = 8, repeat: int = 1) -> list:
    """Measure every pinned configuration on every pinned backend."""
    return [
        run_smoke(
            SMOKE_CASES[:case_count],
            sample_period=sample_period,
            simulation_scope=scope,
            memory_model=memory_model,
            simulator_backend=backend,
            repeat=repeat,
        )
        for scope, memory_model, case_count in SMOKE_SUITE
        for backend in SMOKE_BACKENDS
    ]


def profile_block(case_ids, sample_period, simulation_scope, memory_model,
                  simulator_backend, top: int = 20) -> None:
    """Run one block under cProfile and print the hottest functions."""
    import cProfile
    import io
    import pstats
    import sys

    profiler = cProfile.Profile()
    profiler.enable()
    run_once(case_ids, sample_period, simulation_scope, memory_model,
             simulator_backend)
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    backend = resolve_simulator_backend(simulator_backend)
    print(
        f"--- cProfile [{simulation_scope}+{memory_model} backend={backend}] ---",
        file=sys.stderr,
    )
    print(stream.getvalue(), file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT), metavar="PATH",
                        help="where to write the JSON summary")
    parser.add_argument("--cases", type=int, default=None, metavar="N",
                        help="how many smoke cases to run (single-measurement mode)")
    parser.add_argument("--sample-period", type=int, default=None)
    parser.add_argument("--scope", default=None,
                        choices=SIMULATION_SCOPES, dest="simulation_scope")
    parser.add_argument("--memory-model", default=None,
                        choices=MEMORY_MODELS, dest="memory_model")
    parser.add_argument("--backend", default=None, choices=SIMULATOR_BACKENDS,
                        dest="simulator_backend",
                        help="measure one simulator core (single-measurement "
                             "mode; the pinned suite measures both)")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="measured passes per block after one warm-up "
                             "pass; the median pass is reported (default 1, "
                             "no warm-up)")
    parser.add_argument("--profile", action="store_true",
                        help="print a cProfile hot-spot table per block to "
                             "stderr instead of writing gate numbers")
    args = parser.parse_args(argv)
    if args.repeat < 1:
        parser.error("--repeat must be at least 1")

    single_config = any(
        value is not None
        for value in (args.cases, args.simulation_scope,
                      args.memory_model, args.sample_period,
                      args.simulator_backend)
    )
    period = args.sample_period if args.sample_period is not None else 8

    if args.profile:
        if single_config:
            plan = [(
                args.simulation_scope or "single_wave",
                args.memory_model or "flat",
                args.cases if args.cases is not None else len(SMOKE_CASES),
                args.simulator_backend,
            )]
        else:
            plan = [
                (scope, memory_model, case_count, backend)
                for scope, memory_model, case_count in SMOKE_SUITE
                for backend in SMOKE_BACKENDS
            ]
        for scope, memory_model, case_count, backend in plan:
            profile_block(SMOKE_CASES[:case_count], period, scope,
                          memory_model, backend)
        return 0

    if single_config:
        measurements = [
            run_smoke(
                SMOKE_CASES[: args.cases if args.cases is not None else len(SMOKE_CASES)],
                sample_period=period,
                simulation_scope=args.simulation_scope or "single_wave",
                memory_model=args.memory_model or "flat",
                simulator_backend=args.simulator_backend,
                repeat=args.repeat,
            )
        ]
    else:
        measurements = run_suite(sample_period=period, repeat=args.repeat)
    summary = {
        "benchmark": "simulator_smoke",
        "python": platform.python_version(),
        "measurements": measurements,
    }
    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")
    for block in measurements:
        print(
            f"[{block['simulation_scope']}+{block['memory_model']}"
            f" backend={block['simulator_backend']}] "
            f"{len(block['profiles'])} profiles, "
            f"{block['simulated_cycles']} simulated cycles in "
            f"{block['wall_seconds']:.2f}s -> "
            f"{block['cycles_per_second']:,} cycles/s"
        )
    print(f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
