"""Simulator throughput smoke benchmark.

Profiles a small subset of the :mod:`bench_pipeline_batch` cases (baseline
and hand-optimized variants, sequential, no cache) and reports simulator
throughput as *simulated cycles per wall second*: the cycles the simulator
actually walked (``wave_cycles`` for the single-wave scope, the sum of
every SM's cycles across every wave for the whole-GPU scope) divided by the
time spent inside :meth:`AdvisingSession.profile`.

By default the smoke measures the **pinned suite** — one block per
configuration the regression gate watches:

* ``single_wave`` + ``flat`` over 3 cases — the cheap extrapolating path
  every CI run and most users exercise;
* ``whole_gpu`` + ``hierarchy`` over 1 case — the expensive path (full-grid
  dispatch through the L1/L2/DRAM model), so a slow-down that only affects
  the detailed engines cannot land silently.

The result is written as JSON — by default to ``BENCH_simulator.json`` at
the repository root — so CI can track the simulator's perf trajectory run
over run::

    PYTHONPATH=src python benchmarks/simulator_smoke.py
    PYTHONPATH=src python benchmarks/simulator_smoke.py \
        --scope whole_gpu --memory-model hierarchy --cases 1 --output /tmp/bench.json

Passing any of ``--scope``/``--memory-model``/``--cases``/``--sample-period``
measures just that one configuration instead of the pinned suite.

The workload is deterministic (fixed case list, fixed sample period), so
throughput changes reflect simulator changes, not workload drift.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from bench_pipeline_batch import CASES

from repro.api.request import request_for_case
from repro.api.session import AdvisingSession
from repro.sampling.gpu import GpuSimulationResult
from repro.sampling.memory import MEMORY_MODELS
from repro.sampling.profiler import SIMULATION_SCOPES

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"
#: The bench_pipeline_batch subset the smoke run profiles.
SMOKE_CASES = CASES[:3]
#: The pinned measurement suite (scope, memory model, case count) the
#: regression gate compares block for block.  The whole-GPU + hierarchy
#: block walks ~70x more simulated cycles per case, so it pins one case.
SMOKE_SUITE = (
    ("single_wave", "flat", 3),
    ("whole_gpu", "hierarchy", 1),
)


def run_smoke(case_ids, sample_period: int = 8, simulation_scope: str = "single_wave",
              memory_model: str = "flat") -> dict:
    """Profile every case variant once; return the throughput summary."""
    session = AdvisingSession(
        sample_period=sample_period, simulation_scope=simulation_scope,
        memory_model=memory_model,
    )
    per_case = []
    simulated_cycles = 0
    wall_seconds = 0.0
    for case_id in case_ids:
        for variant in ("baseline", "optimized"):
            started = time.perf_counter()
            profiled = session.profile(request_for_case(case_id, variant))
            elapsed = time.perf_counter() - started
            simulation = profiled.simulation
            if isinstance(simulation, GpuSimulationResult):
                # Whole-GPU runs walk every SM of every wave; count all of it.
                cycles = simulation.simulated_sm_cycles
            else:
                cycles = profiled.profile.statistics.wave_cycles
            simulated_cycles += cycles
            wall_seconds += elapsed
            per_case.append(
                {
                    "case": case_id,
                    "variant": variant,
                    "simulated_cycles": cycles,
                    "kernel_cycles": profiled.profile.statistics.kernel_cycles,
                    "seconds": round(elapsed, 4),
                }
            )
    return {
        "simulation_scope": simulation_scope,
        "memory_model": memory_model,
        "sample_period": sample_period,
        "cases": list(case_ids),
        "profiles": per_case,
        "simulated_cycles": simulated_cycles,
        "wall_seconds": round(wall_seconds, 4),
        "cycles_per_second": round(simulated_cycles / wall_seconds) if wall_seconds else 0,
    }


def run_suite(sample_period: int = 8) -> list:
    """Measure every pinned :data:`SMOKE_SUITE` configuration."""
    return [
        run_smoke(
            SMOKE_CASES[:case_count],
            sample_period=sample_period,
            simulation_scope=scope,
            memory_model=memory_model,
        )
        for scope, memory_model, case_count in SMOKE_SUITE
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(DEFAULT_OUTPUT), metavar="PATH",
                        help="where to write the JSON summary")
    parser.add_argument("--cases", type=int, default=None, metavar="N",
                        help="how many smoke cases to run (single-measurement mode)")
    parser.add_argument("--sample-period", type=int, default=None)
    parser.add_argument("--scope", default=None,
                        choices=SIMULATION_SCOPES, dest="simulation_scope")
    parser.add_argument("--memory-model", default=None,
                        choices=MEMORY_MODELS, dest="memory_model")
    args = parser.parse_args(argv)

    single_config = any(
        value is not None
        for value in (args.cases, args.simulation_scope,
                      args.memory_model, args.sample_period)
    )
    period = args.sample_period if args.sample_period is not None else 8
    if single_config:
        measurements = [
            run_smoke(
                SMOKE_CASES[: args.cases if args.cases is not None else len(SMOKE_CASES)],
                sample_period=period,
                simulation_scope=args.simulation_scope or "single_wave",
                memory_model=args.memory_model or "flat",
            )
        ]
    else:
        measurements = run_suite(sample_period=period)
    summary = {
        "benchmark": "simulator_smoke",
        "python": platform.python_version(),
        "measurements": measurements,
    }
    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")
    for block in measurements:
        print(
            f"[{block['simulation_scope']}+{block['memory_model']}] "
            f"{len(block['profiles'])} profiles, "
            f"{block['simulated_cycles']} simulated cycles in "
            f"{block['wall_seconds']:.2f}s -> "
            f"{block['cycles_per_second']:,} cycles/s"
        )
    print(f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
