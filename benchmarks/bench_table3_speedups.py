"""Table 3: achieved vs. estimated speedups.

``pytest benchmarks/bench_table3_speedups.py --benchmark-only`` regenerates
the table.  By default a representative subset covering every optimizer is
evaluated (the full 26-row sweep takes a few minutes; enable it with
``--full-table3``).  The reproduced rows are printed next to the paper's
achieved/estimated numbers; see EXPERIMENTS.md for the recorded comparison.
"""

from __future__ import annotations

import pytest

from repro.evaluation.table3 import evaluate_table3, format_table3
from repro.workloads.registry import all_cases, case_by_name

#: One case per optimizer: the representative subset benchmarked by default.
REPRESENTATIVE_CASES = [
    "rodinia/hotspot:strength_reduction",
    "rodinia/backprop:warp_balance",
    "rodinia/kmeans:loop_unrolling",
    "rodinia/b+tree:code_reorder",
    "rodinia/cfd:fast_math",
    "rodinia/gaussian:thread_increase",
    "rodinia/particlefilter:block_increase",
    "rodinia/myocyte:function_splitting",
    "Quicksilver:function_inlining",
    "Quicksilver:register_reuse",
    "ExaTENSOR:memory_transaction_reduction",
]


def test_table3_speedups(benchmark, full_table3):
    cases = (
        all_cases()
        if full_table3
        else [case_by_name(name) for name in REPRESENTATIVE_CASES]
    )

    result = benchmark.pedantic(evaluate_table3, args=(cases,), iterations=1, rounds=1)

    print()
    print(format_table3(result))
    print(
        f"\nReproduced geomean achieved {result.geomean_achieved:.2f}x "
        f"(paper: 1.22x), estimated {result.geomean_estimated:.2f}x (paper: 1.26x), "
        f"mean estimate error {result.mean_error * 100:.1f}%"
    )

    # Shape checks corresponding to the paper's headline claims: no applied
    # optimization is a real slowdown, the aggregate speedup is positive, and
    # the thread-increase (gaussian) case is one of the largest wins.
    assert all(row.achieved_speedup >= 0.95 for row in result.rows)
    assert result.geomean_achieved > 1.05
    by_name = {row.case.case_id: row for row in result.rows}
    gaussian = by_name.get("rodinia/gaussian:thread_increase")
    if gaussian is not None:
        assert gaussian.achieved_speedup > 2.0
