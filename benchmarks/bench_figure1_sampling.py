"""Figure 1: the PC-sampling mental model (stall / active ratios)."""

from __future__ import annotations

from repro.evaluation.figure1 import sampling_model_demo


def test_figure1_sampling_model(benchmark):
    demo = benchmark.pedantic(sampling_model_demo, kwargs={"sample_period": 8},
                              iterations=1, rounds=3)

    print()
    print(f"sample period          : {demo['sample_period']} cycles")
    print(f"total samples          : {demo['total_samples']}")
    print(f"active samples         : {demo['active_samples']}")
    print(f"latency samples        : {demo['latency_samples']}")
    print(f"stall ratio            : {demo['stall_ratio']:.2f}")
    print(f"active ratio           : {demo['active_ratio']:.2f}")
    print(f"warps per scheduler    : {demo['warps_per_scheduler']}")
    print(f"stall reasons          : {demo['stalls_by_reason']}")

    assert demo["total_samples"] == demo["active_samples"] + demo["latency_samples"]
    assert 0.0 < demo["stall_ratio"] < 1.0
