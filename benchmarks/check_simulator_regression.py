"""Benchmark regression gate for the simulator throughput smoke.

Compares a freshly measured ``simulator_smoke`` summary against the
committed reference (``BENCH_simulator.json`` at the repository root) and
fails when throughput dropped by more than the allowed fraction — so an
accidental slow-down of the simulator cannot land silently::

    PYTHONPATH=src python benchmarks/simulator_smoke.py --output fresh.json
    PYTHONPATH=src python benchmarks/check_simulator_regression.py fresh.json

Both files hold a list of pinned **measurement blocks** (one per simulator
configuration x simulator backend — the flat single-wave path and the
whole-GPU + hierarchy path, each on the ``vector`` and the ``object``
core), and the gate is applied *block for block*: every reference block
must have a fresh twin that measured the identical workload (same case
list, simulation scope, memory model, sample period **and** simulator
backend), and every twin must hold its throughput.  A fresh run that
silently skipped the expensive configuration — or that dropped the vector
core, e.g. because numpy vanished from the runner and every measurement
quietly fell back to the object core — therefore fails the gate instead of
passing vacuously.  The reference itself must pin at least one vector
block; a baseline regenerated without the vector core is rejected so the
gate cannot be weakened by accident.  Pre-suite single-block summaries
(and ad-hoc ``--scope ...`` measurements) are still understood — they are
treated as one-block lists measuring the historical ``object`` core.

The gate is one-sided: faster is always fine.  The committed reference is
refreshed by hand — rerun ``simulator_smoke.py --repeat 3 --output
BENCH_simulator.json`` and commit the result whenever the perf profile
changes intentionally (CI additionally uploads each fresh measurement as a
build artifact for trajectory tracking).  Measure fresh runs with
``--repeat`` too: the headline ``cycles_per_second`` of a repeated block
is the median pass, so the comparison is median-vs-median and absorbs
runner noise.  The default tolerance of 30% allows for runner-to-runner
hardware variance; genuine regressions (the PR 3 event-driven rewrite was
a 2.5x swing) blow well past it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

DEFAULT_REFERENCE = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: The workload-identity fields two blocks must share to be comparable
#: (with the defaults pre-suite summaries implied).  Blocks recorded before
#: the vector core existed carry no ``simulator_backend`` key; they measured
#: the object core, so that is the implied default.
IDENTITY = (("cases", None), ("simulation_scope", "single_wave"),
            ("memory_model", "flat"), ("sample_period", 8),
            ("simulator_backend", "object"))


def blocks_of(summary: dict, origin: str) -> List[dict]:
    """The measurement blocks of a summary (legacy single-block included)."""
    if summary.get("benchmark") != "simulator_smoke":
        raise ValueError(f"{origin} summary is not a simulator_smoke result")
    if "measurements" in summary:
        blocks = summary["measurements"]
        if not isinstance(blocks, list) or not blocks:
            raise ValueError(f"{origin} summary has no measurement blocks")
        return blocks
    return [summary]  # pre-suite layout: the summary is the one block


def identity_of(block: dict) -> tuple:
    return tuple(
        json.dumps(block.get(key, default), sort_keys=True)
        for key, default in IDENTITY
    )


def describe(block: dict) -> str:
    return (
        f"{block.get('simulation_scope', 'single_wave')}"
        f"+{block.get('memory_model', 'flat')}"
        f" backend={block.get('simulator_backend', 'object')}"
        f" over {len(block.get('cases') or [])} cases"
    )


def check_block(fresh: dict, reference: dict, max_drop: float) -> str:
    """An error message if ``fresh`` regressed past ``max_drop``, else ''."""
    fresh_rate = fresh.get("cycles_per_second") or 0
    reference_rate = reference.get("cycles_per_second") or 0
    if reference_rate <= 0:
        return (
            f"reference throughput of {describe(reference)} is "
            f"{reference_rate}; regenerate the baseline"
        )
    floor = reference_rate * (1.0 - max_drop)
    if fresh_rate < floor:
        drop = 1.0 - fresh_rate / reference_rate
        return (
            f"simulator throughput of {describe(reference)} regressed "
            f"{drop:.1%}: {fresh_rate:,} cycles/s vs reference "
            f"{reference_rate:,} (allowed drop {max_drop:.0%}, "
            f"floor {floor:,.0f})"
        )
    return ""


def pair_blocks(fresh: dict, reference: dict) -> Tuple[str, List[Tuple[dict, dict]]]:
    """Match every reference block to its fresh twin by workload identity.

    Returns ``(error, pairs)``: a non-empty error (and no pairs) when either
    summary is malformed or a pinned reference configuration has no fresh
    measurement — the single source of pairing truth for both the gate and
    the ok-report.
    """
    try:
        fresh_blocks = blocks_of(fresh, "fresh")
        reference_blocks = blocks_of(reference, "reference")
    except ValueError as exc:
        return str(exc), []
    if not any(
        block.get("simulator_backend") == "vector" for block in reference_blocks
    ):
        return (
            "reference pins no vector-backend block; the default simulator "
            "core must stay under the gate — regenerate the baseline with "
            "simulator_smoke.py (the pinned suite measures both cores)"
        ), []
    fresh_by_identity = {identity_of(block): block for block in fresh_blocks}
    pairs = []
    for reference_block in reference_blocks:
        twin = fresh_by_identity.get(identity_of(reference_block))
        if twin is None:
            return (
                f"fresh run has no measurement of {describe(reference_block)} "
                f"(cases {reference_block.get('cases')!r}); the gate cannot "
                f"pass by skipping a pinned configuration"
            ), []
        pairs.append((reference_block, twin))
    return "", pairs


def check(fresh: dict, reference: dict, max_drop: float) -> str:
    """Gate every reference block against its fresh twin; '' when all hold."""
    error, pairs = pair_blocks(fresh, reference)
    if error:
        return error
    for reference_block, twin in pairs:
        error = check_block(twin, reference_block, max_drop)
        if error:
            return error
    return ""


def history_entry(fresh: dict, gate_error: str, recorded: str) -> dict:
    """One ``BENCH_history.jsonl`` line for this gated run.

    Every gated run is recorded — passes and failures alike — so the fleet
    dashboard's throughput trajectory shows the dip that tripped the gate,
    not just the runs that survived it.  Only the identity fields and the
    headline rate are kept; full summaries stay in the CI artifacts.
    """
    blocks = []
    for block in blocks_of(fresh, "fresh"):
        entry = {key: block.get(key, default) for key, default in IDENTITY}
        entry["cycles_per_second"] = block.get("cycles_per_second")
        blocks.append(entry)
    return {
        "benchmark": "simulator_smoke",
        "recorded": recorded,
        "gate": "fail" if gate_error else "ok",
        "blocks": blocks,
    }


def append_history(path: Path, entry: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured simulator_smoke JSON")
    parser.add_argument("--reference", default=str(DEFAULT_REFERENCE),
                        help="committed baseline JSON (default: repo root)")
    parser.add_argument("--max-drop", type=float, default=0.30, metavar="FRACTION",
                        help="maximum tolerated throughput drop (default 0.30)")
    parser.add_argument("--append-history", default=None, metavar="PATH",
                        help="append this run (pass or fail) as one line of "
                        "BENCH_history.jsonl for the fleet trend dashboard")
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    reference = json.loads(Path(args.reference).read_text())
    error = check(fresh, reference, args.max_drop)
    if args.append_history:
        from datetime import datetime, timezone

        recorded = datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
        try:
            append_history(
                Path(args.append_history),
                history_entry(fresh, error, recorded),
            )
        except ValueError as exc:
            # A malformed summary already fails the gate below; don't let
            # history bookkeeping mask that verdict with a traceback.
            print(f"history not recorded: {exc}", file=sys.stderr)
    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    _, pairs = pair_blocks(fresh, reference)
    for reference_block, twin in pairs:
        print(
            f"ok: {describe(reference_block)}: "
            f"{twin['cycles_per_second']:,} cycles/s vs reference "
            f"{reference_block['cycles_per_second']:,} "
            f"(within {args.max_drop:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
