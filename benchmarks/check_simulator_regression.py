"""Benchmark regression gate for the simulator throughput smoke.

Compares a freshly measured ``simulator_smoke`` summary against the
committed reference (``BENCH_simulator.json`` at the repository root) and
fails when throughput dropped by more than the allowed fraction — so an
accidental slow-down of the event-driven simulator cannot land silently::

    PYTHONPATH=src python benchmarks/simulator_smoke.py --output fresh.json
    PYTHONPATH=src python benchmarks/check_simulator_regression.py fresh.json

The gate is one-sided: faster is always fine.  The committed reference is
refreshed by hand — rerun ``simulator_smoke.py --output
BENCH_simulator.json`` and commit the result whenever the perf profile
changes intentionally (CI additionally uploads each fresh measurement as a
build artifact for trajectory tracking).  The default tolerance of 30%
allows for runner-to-runner hardware variance; genuine regressions (the
PR 3 event-driven rewrite was a 2.5x swing) blow well past it.

Summaries are only compared when they measured the same workload: the case
list, simulation scope, memory model and sample period must all match, so
a whole-GPU or hierarchy measurement can never be judged against the flat
single-wave reference.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_REFERENCE = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def check(fresh: dict, reference: dict, max_drop: float) -> str:
    """An error message if ``fresh`` regressed past ``max_drop``, else ''."""
    for summary, origin in ((fresh, "fresh"), (reference, "reference")):
        if summary.get("benchmark") != "simulator_smoke":
            return f"{origin} summary is not a simulator_smoke result"
    fresh_rate = fresh.get("cycles_per_second") or 0
    reference_rate = reference.get("cycles_per_second") or 0
    if reference_rate <= 0:
        return f"reference throughput is {reference_rate}; regenerate the baseline"
    # Throughput is only comparable when the workload configuration is
    # identical; "memory_model" is absent from pre-hierarchy references and
    # defaults to the behaviour they measured (flat).
    comparable = ("cases", ("simulation_scope", "single_wave"),
                  ("memory_model", "flat"), ("sample_period", 8))
    for key in comparable:
        key, default = key if isinstance(key, tuple) else (key, None)
        if fresh.get(key, default) != reference.get(key, default):
            return (
                f"{key} differs; the comparison is meaningless "
                f"(fresh {fresh.get(key, default)!r} vs reference "
                f"{reference.get(key, default)!r})"
            )
    floor = reference_rate * (1.0 - max_drop)
    if fresh_rate < floor:
        drop = 1.0 - fresh_rate / reference_rate
        return (
            f"simulator throughput regressed {drop:.1%}: "
            f"{fresh_rate:,} cycles/s vs reference {reference_rate:,} "
            f"(allowed drop {max_drop:.0%}, floor {floor:,.0f})"
        )
    return ""


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="freshly measured simulator_smoke JSON")
    parser.add_argument("--reference", default=str(DEFAULT_REFERENCE),
                        help="committed baseline JSON (default: repo root)")
    parser.add_argument("--max-drop", type=float, default=0.30, metavar="FRACTION",
                        help="maximum tolerated throughput drop (default 0.30)")
    args = parser.parse_args(argv)

    fresh = json.loads(Path(args.fresh).read_text())
    reference = json.loads(Path(args.reference).read_text())
    error = check(fresh, reference, args.max_drop)
    if error:
        print(f"FAIL: {error}", file=sys.stderr)
        return 1
    print(
        f"ok: {fresh['cycles_per_second']:,} cycles/s vs reference "
        f"{reference['cycles_per_second']:,} (within {args.max_drop:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
