"""Table 2: every optimizer matches its inefficiency pattern.

This bench runs the full dynamic-analysis pipeline (blame + all eleven
optimizers) on a kernel engineered to trigger each optimizer and reports the
matched ratio and estimated speedup per optimizer — the catalogue of Table 2
in executable form.  The benchmark timing measures one full dynamic-analysis
pass.
"""

from __future__ import annotations

from repro.advisor.advisor import GPA
from repro.workloads.registry import case_by_name

#: Optimizer -> the benchmark whose baseline it should match.
OPTIMIZER_SHOWCASES = {
    "GPURegisterReuseOptimizer": "Quicksilver:register_reuse",
    "GPUStrengthReductionOptimizer": "rodinia/hotspot:strength_reduction",
    "GPUFunctionSplitOptimizer": "rodinia/myocyte:function_splitting",
    "GPUFastMathOptimizer": "rodinia/cfd:fast_math",
    "GPUWarpBalanceOptimizer": "rodinia/backprop:warp_balance",
    "GPUMemoryTransactionReductionOptimizer": "ExaTENSOR:memory_transaction_reduction",
    "GPULoopUnrollingOptimizer": "rodinia/kmeans:loop_unrolling",
    "GPUCodeReorderingOptimizer": "rodinia/b+tree:code_reorder",
    "GPUFunctionInliningOptimizer": "Quicksilver:function_inlining",
    "GPUBlockIncreaseOptimizer": "rodinia/particlefilter:block_increase",
    "GPUThreadIncreaseOptimizer": "rodinia/gaussian:thread_increase",
}


def test_table2_optimizer_catalogue(benchmark):
    gpa = GPA(sample_period=8)

    def analyze_one():
        case = case_by_name("rodinia/hotspot:strength_reduction")
        setup = case.build_baseline()
        return gpa.advise(setup.cubin, setup.kernel, setup.config, setup.workload)

    benchmark.pedantic(analyze_one, iterations=1, rounds=3)

    print()
    header = f"{'Optimizer':42s} {'Showcase':42s} {'Ratio':>8s} {'Estimate':>9s}"
    print(header)
    print("-" * len(header))
    for optimizer_name, case_name in OPTIMIZER_SHOWCASES.items():
        case = case_by_name(case_name)
        setup = case.build_baseline()
        report = gpa.advise(setup.cubin, setup.kernel, setup.config, setup.workload)
        advice = report.advice_for(optimizer_name)
        print(
            f"{optimizer_name:42s} {case_name:42s} "
            f"{advice.ratio * 100:7.2f}% {advice.estimated_speedup:8.2f}x"
        )
        assert advice is not None
        assert advice.applicable
        assert advice.estimated_speedup >= 1.0
