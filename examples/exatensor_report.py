#!/usr/bin/env python
"""Figure 8 / Section 7.1: the ExaTENSOR tensor-transpose case study.

Reproduces the two-step optimization the paper walks through:

1. GPA analyzes the baseline kernel and (among its top suggestions) proposes
   Strength Reduction — replace the integer division in the index arithmetic
   with a multiplication by the reciprocal;
2. after applying that change, GPA is run again on the updated kernel and
   proposes Memory Transaction Reduction — replace redundant global reads of
   values shared by all threads with constant-memory reads.

Each step prints the (Figure 8 style) report excerpt and the achieved
speedup measured by re-simulating the changed kernel.

Run with:  python examples/exatensor_report.py
"""

from repro import GPA
from repro.advisor.report import render_report
from repro.workloads.apps import exatensor


def profile_and_report(gpa, setup, title):
    profiled = gpa.profile(setup.cubin, setup.kernel, setup.config, setup.workload)
    report = gpa.advise_profiled(profiled)
    print("=" * 78)
    print(title)
    print(render_report(report, top=2, hotspots_per_advice=2))
    return profiled, report


def main():
    gpa = GPA(sample_period=8)

    baseline = exatensor.baseline()
    baseline_profiled, _ = profile_and_report(gpa, baseline, "Step 0: original kernel")

    step1 = exatensor.strength_reduced()
    step1_profiled, _ = profile_and_report(
        gpa, step1, "Step 1: integer division replaced by reciprocal multiply"
    )
    speedup1 = baseline_profiled.kernel_cycles / step1_profiled.kernel_cycles
    print(f"\n--> Strength Reduction achieved speedup: {speedup1:.2f}x "
          f"(paper: 1.07x)\n")

    step2 = exatensor.constant_memory()
    step2_profiled, _ = profile_and_report(
        gpa, step2, "Step 2: shared read-only data moved to constant memory"
    )
    speedup2 = step1_profiled.kernel_cycles / step2_profiled.kernel_cycles
    print(f"\n--> Memory Transaction Reduction achieved speedup: {speedup2:.2f}x "
          f"(paper: 1.03x)")


if __name__ == "__main__":
    main()
