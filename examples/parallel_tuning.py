#!/usr/bin/env python
"""Section 5.2.2: tuning launch configurations with the parallel estimator.

Takes the gaussian Fan2 kernel (launched with 16-thread blocks, the largest
win in Table 3) and sweeps candidate block sizes, printing the estimator's
CW / CI / f factors and estimated speedup (Equations 6-10) next to the
speedup measured by actually re-simulating each configuration.

Run with:  python examples/parallel_tuning.py
"""

from repro import GPA, LaunchConfig
from repro.estimators.parallel import ParallelEstimator
from repro.workloads.rodinia import gaussian


def main():
    gpa = GPA(sample_period=8)
    baseline = gaussian.baseline()
    profiled = gpa.profile(baseline.cubin, baseline.kernel, baseline.config,
                           baseline.workload)
    estimator = ParallelEstimator()
    total_threads = baseline.config.total_threads

    print(f"Baseline launch: {baseline.config.grid_blocks} blocks x "
          f"{baseline.config.threads_per_block} threads "
          f"({profiled.profile.statistics.warps_per_scheduler:.1f} warps/scheduler, "
          f"issue ratio {profiled.profile.issue_rate:.2f})\n")
    print(f"{'threads/block':>13s} {'blocks':>8s} {'CW':>6s} {'CI':>6s} {'f':>6s} "
          f"{'estimated':>10s} {'measured':>9s}")

    for threads in (16, 32, 64, 128, 256, 512):
        blocks = max(1, total_threads // threads)
        estimate = estimator.estimate(profiled.profile, LaunchConfig(blocks, threads))
        candidate = gaussian._build(threads_per_block=threads)
        measured_profile = gpa.profile(candidate.cubin, candidate.kernel,
                                       candidate.config, candidate.workload)
        measured = profiled.kernel_cycles / measured_profile.kernel_cycles
        print(f"{threads:13d} {blocks:8d} {estimate.cw:6.2f} {estimate.ci:6.2f} "
              f"{estimate.f:6.2f} {estimate.speedup:9.2f}x {measured:8.2f}x")

    print("\nThe paper reports 3.86x achieved / 3.33x estimated for increasing "
          "Fan2's block size on the V100.")


if __name__ == "__main__":
    main()
