#!/usr/bin/env python
"""Section 4 walkthrough: how the instruction blamer attributes stalls.

Builds the b+tree-like kernel of Listing 2 (a load whose value is consumed
immediately inside a barrier-delimited loop), profiles it, and then shows
each stage of the blamer:

* the raw per-instruction stall profile (what plain PC sampling gives you),
* the dependency graph built from backward slicing (registers, barrier
  registers, predicates),
* the edges removed by the three pruning rules,
* the Equation-1 apportioning result: which *source* instructions are blamed,
  with the Figure 5 fine-grained classification,
* the single-dependency coverage before and after pruning (Figure 7's metric).

Run with:  python examples/blamer_walkthrough.py
"""

from repro import GPA, InstructionBlamer, VoltaV100
from repro.blame.coverage import single_dependency_coverage
from repro.blame.graph import build_dependency_graph
from repro.blame.pruning import prune_cold_edges
from repro.workloads.rodinia import btree


def main():
    gpa = GPA(sample_period=8)
    setup = btree.baseline()
    profiled = gpa.profile(setup.cubin, setup.kernel, setup.config, setup.workload)
    profile, structure = profiled.profile, profiled.structure

    print("== Raw PC sampling profile (top stalled instructions) ==")
    stalled = sorted(profile.stall_samples(), key=lambda e: -e.total_stalls)[:5]
    for entry in stalled:
        location = structure.location(entry.function, entry.offset)
        reasons = {reason.value: count for reason, count in entry.stalls.items()}
        print(f"  {location.describe():55s} {reasons}")

    print("\n== Dependency graph before pruning ==")
    graph = build_dependency_graph(profile, structure)
    print(f"  nodes: {len(graph.nodes)}, edges: {len(graph.edges)}, "
          f"single-dependency coverage: {single_dependency_coverage(graph):.2f}")

    pruned = graph.copy()
    statistics = prune_cold_edges(pruned, structure, VoltaV100)
    print("\n== After pruning cold edges ==")
    print(f"  removed by opcode rule    : {statistics.removed_by_opcode}")
    print(f"  removed by dominator rule : {statistics.removed_by_dominator}")
    print(f"  removed by latency rule   : {statistics.removed_by_latency}")
    print(f"  remaining edges           : {statistics.remaining_edges}, "
          f"coverage: {single_dependency_coverage(pruned):.2f}")

    print("\n== Blamed sources (Equation 1 + Figure 5 classification) ==")
    blame = InstructionBlamer(VoltaV100).blame(profile, structure)
    for key, stalls in blame.top_sources(5):
        location = structure.location(*key)
        details = {detail.value: round(count, 1) for detail, count in blame.blamed[key].items()}
        print(f"  {location.describe():55s} blamed {stalls:7.1f} samples  {details}")

    print("\n== Hottest def/use pairs (what Code Reordering works on) ==")
    edges = sorted((e for e in blame.edges if not e.is_self_blame),
                   key=lambda e: -e.stalls)[:3]
    for edge in edges:
        source = structure.location(*edge.source)
        dest = structure.location(*edge.dest)
        print(f"  {edge.stalls:7.1f} stalls, distance {edge.distance}: "
              f"{source.describe()}  ->  {dest.describe()}")


if __name__ == "__main__":
    main()
