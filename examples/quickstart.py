#!/usr/bin/env python
"""Quickstart: author a kernel, profile it, and get GPA's advice.

This example walks the full pipeline of Figure 2 on a tiny hand-written
kernel: build a SASS-like kernel with the KernelBuilder DSL (including the
Table 1 instruction), profile a launch on the simulated V100, and print the
ranked advice report.

Run with:  python examples/quickstart.py
"""

from repro import AdvisingRequest, AdvisingSession, LaunchConfig, WorkloadSpec, render_report
from repro.cubin.builder import CubinBuilder, imm, p
from repro.isa.parser import parse_instruction


def build_kernel():
    """A kernel whose loop loads a value and uses it immediately."""
    builder = CubinBuilder(module_name="quickstart")
    k = builder.kernel("saxpy_like", source_file="quickstart.cu")
    k.at_line(5)
    k.s2r(0, "SR_TID.X")            # thread index
    k.s2r(1, "SR_CTAID.X")          # block index
    k.mov_imm(3, 0)
    k.imad(2, 0, imm(4), 3, wide=True)   # element address
    k.mov_imm(8, 0)                  # loop counter
    k.mov_imm(9, 1 << 16)            # loop bound (actual trips from the workload)
    k.at_line(8)
    k.isetp(0, 8, 9, "LT")
    with k.loop("elements", predicate=p(0)):
        k.at_line(8)
        k.iadd(8, 8, imm(1))
        k.at_line(9)
        k.ldg(4, 2)                  # x[i]
        k.at_line(10)
        k.ffma(5, 4, 4, 5)           # acc += x[i] * x[i]   <- consumes the load at once
        k.at_line(8)
        k.isetp(0, 8, 9, "LT")
    k.at_line(12)
    k.stg(2, 5)
    k.exit()
    builder.add_function(k.build())
    return builder.build()


def main():
    # Table 1: dissect the fields of a single instruction.
    instruction = parse_instruction("@P0 LDG.32 R0, [R2]")
    print("Table 1 dissection of '@P0 LDG.32 R0, [R2]':")
    print(f"  predicate        : {instruction.predicate}")
    print(f"  opcode.modifiers : {instruction.full_opcode}")
    print(f"  destination      : {[str(d) for d in instruction.dests]}")
    print(f"  source registers : {sorted(str(r) for r in instruction.used_registers)}")
    print()

    session = AdvisingSession(sample_period=8)
    request = (
        AdvisingRequest.builder()
        .binary(
            build_kernel(),
            "saxpy_like",
            LaunchConfig(grid_blocks=640, threads_per_block=128),
            WorkloadSpec(loop_trip_counts={8: 16}),
        )
        .build()
    )
    print(render_report(session.report_for(request), top=3))


if __name__ == "__main__":
    main()
