#!/usr/bin/env python
"""Section 7: the four application case studies.

For each of Quicksilver, ExaTENSOR, PeleC and Minimod, profile the baseline
kernel, show GPA's top suggestions, apply the optimization the paper applied
(by building the hand-optimized variant of the synthetic kernel) and report
the achieved speedup next to the paper's.

Run with:  python examples/case_studies.py
"""

from repro import GPA
from repro.evaluation.table3 import evaluate_case
from repro.workloads.registry import application_cases


def main():
    gpa = GPA(sample_period=8)
    print(f"{'Application':14s} {'Kernel':24s} {'Optimization':30s} "
          f"{'Achieved':>9s} {'Estimated':>10s} {'Paper A/E':>13s}")
    print("-" * 106)
    for case in application_cases():
        row = evaluate_case(case, gpa=gpa)
        print(
            f"{case.name:14s} {case.kernel:24s} {case.optimization:30s} "
            f"{row.achieved_speedup:8.2f}x {row.estimated_speedup:9.2f}x "
            f"{case.paper_achieved_speedup:5.2f}/{case.paper_estimated_speedup:.2f}x"
        )

    print("\nTop advice for each application baseline:")
    seen = set()
    for case in application_cases():
        if case.name in seen:
            continue
        seen.add(case.name)
        setup = case.build_baseline()
        report = gpa.advise(setup.cubin, setup.kernel, setup.config, setup.workload)
        top = [item for item in report.advice if item.applicable][:3]
        print(f"\n  {case.name} / {case.kernel}:")
        for rank, advice in enumerate(top, start=1):
            print(f"    {rank}. {advice.optimizer:42s} ratio {advice.ratio*100:5.1f}%  "
                  f"estimate {advice.estimated_speedup:.2f}x")


if __name__ == "__main__":
    main()
